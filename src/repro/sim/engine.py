"""Event heap and simulation clock.

The engine is intentionally minimal: callbacks scheduled at absolute or
relative simulated times, executed in deterministic order.  Ties at the
same timestamp break first on an integer ``priority`` (lower runs
earlier) and then on insertion order, which makes whole-system runs
bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be
    cancelled.  A cancelled event stays in the heap as a tombstone and
    is skipped when popped.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will not fire.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state})"


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (tombstones excluded)."""
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after the
        current callback returns, in priority/insertion order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        ev = Event(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, ev)
        return ev

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        self._drop_tombstones()
        return self._heap[0].time if self._heap else None

    def _drop_tombstones(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remain."""
        self._drop_tombstones()
        if not self._heap:
            return False
        ev = heapq.heappop(self._heap)
        self._now = ev.time
        self._events_fired += 1
        ev.callback(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap is empty, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given and events remain beyond it, the clock
        is advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                self._drop_tombstones()
                if not self._heap:
                    break
                nxt = self._heap[0].time
                if until is not None and nxt > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                self.step()
                fired += 1
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the heap."""
        return sum(1 for ev in self._heap if not ev.cancelled)
