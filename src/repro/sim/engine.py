"""Event heap and simulation clock.

The engine is intentionally minimal: callbacks scheduled at absolute or
relative simulated times, executed in deterministic order.  Ties at the
same timestamp break first on an integer ``priority`` (lower runs
earlier) and then on insertion order, which makes whole-system runs
bit-reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.obs.bus import EventBus


class Event:
    """Handle for a scheduled callback.

    Instances are returned by :meth:`Simulator.schedule` and can be
    cancelled.  A cancelled event stays in the heap as a tombstone and
    is skipped when popped.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "_sim"
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so it will not fire.  Idempotent.

        The live-count decrement is inlined (rather than calling back
        into the simulator): re-timing cancels one completion event per
        running activity per pass.  Events that already fired detach
        from the simulator first, so late cancels cannot
        double-decrement."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._live -= 1

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) < (
            other.time,
            other.priority,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.9f}, prio={self.priority}, {state})"


class Simulator:
    """Discrete-event simulator with a monotonically advancing clock.

    Example::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run()
    """

    def __init__(self, obs: Optional[EventBus] = None) -> None:
        #: The run's event bus (:mod:`repro.obs`).  Always present so
        #: every layer holding the simulator can reach it via
        #: ``self.sim.obs``; a fresh bus has no subscribers, and emit
        #: sites guard on ``obs.active`` (zero cost when silent).
        self.obs = obs if obs is not None else EventBus()
        self._now = 0.0
        # Heap entries are (time, priority, seq, Event) tuples: ties
        # resolve through C-level tuple comparison without ever calling
        # back into Python (``Event.__lt__`` is kept only for direct
        # Event-vs-Event comparisons in user code).
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_fired = 0
        # Live (pending, non-cancelled) event count; maintained on
        # push/cancel/fire so pending_count is O(1).
        self._live = 0
        # Optional pre-pop hook, set by a component that defers derived
        # event maintenance (the execution engine's lazy re-timing, see
        # ``ExecutionEngine._flush_if_needed``).  Called with the head
        # entry's ``(time, priority)`` — or ``(None, 0)`` when the heap
        # is empty — before any event pops; returns True if it mutated
        # the heap.  ``None`` (the common case) costs one attribute
        # load per step.
        self.flush_fn: Optional[Callable[[Optional[float], int], bool]] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of callbacks executed so far (tombstones excluded)."""
        return self._events_fired

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; zero-delay events run after the
        current callback returns, in priority/insertion order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at (this is the engine's hottest entry point;
        # delay >= 0 already guarantees time >= now).
        time = self._now + delay
        seq = next(self._seq)
        ev = Event(time, priority, seq, callback, args, sim=self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        seq = next(self._seq)
        ev = Event(time, priority, seq, callback, args, sim=self)
        heapq.heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        return ev

    def peek(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        self._pre_pop()
        return self._heap[0][0] if self._heap else None

    def _drop_tombstones(self) -> None:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)

    def _pre_pop(self) -> None:
        """Drop tombstones and give the flush hook (if any) a chance to
        materialise deferred events before the head is examined."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        while True:
            f = self.flush_fn
            if f is None:
                return
            if heap:
                head = heap[0]
                flushed = f(head[0], head[1])
            else:
                flushed = f(None, 0)
            if not flushed:
                return
            while heap and heap[0][3].cancelled:
                heapq.heappop(heap)

    def step(self) -> bool:
        """Execute the next event.  Returns ``False`` if none remain."""
        self._pre_pop()
        if not self._heap:
            return False
        time, _prio, _seq, ev = heapq.heappop(self._heap)
        ev._sim = None  # fired: a later cancel() must not touch _live
        self._live -= 1
        self._now = time
        self._events_fired += 1
        ev.callback(*ev.args)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run until the heap is empty, ``until`` is reached, or
        ``max_events`` callbacks have fired.

        When ``until`` is given and events remain beyond it, the clock
        is advanced exactly to ``until``.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        fired = 0
        heap = self._heap
        heappop = heapq.heappop
        try:
            # The pop/fire sequence AND the _pre_pop maintenance are
            # inlined (rather than delegating to step()/_pre_pop, which
            # would re-scan tombstones and pay a call per event) — this
            # loop is the whole-simulation hot path.
            while True:
                while heap and heap[0][3].cancelled:
                    heappop(heap)
                f = self.flush_fn
                while f is not None:
                    if heap:
                        head = heap[0]
                        flushed = f(head[0], head[1])
                    else:
                        flushed = f(None, 0)
                    if not flushed:
                        break
                    while heap and heap[0][3].cancelled:
                        heappop(heap)
                    f = self.flush_fn  # the flush may re-arm or clear it
                if not heap:
                    break
                nxt = heap[0][0]
                if until is not None and nxt > until:
                    self._now = until
                    break
                if max_events is not None and fired >= max_events:
                    break
                time, _prio, _seq, ev = heappop(heap)
                ev._sim = None  # fired: a later cancel() must not touch _live
                self._live -= 1
                self._now = time
                self._events_fired += 1
                ev.callback(*ev.args)
                fired += 1
        finally:
            self._running = False

    def pending_count(self) -> int:
        """Number of live (non-cancelled) events in the heap.  O(1):
        maintained incrementally on push, cancel and fire rather than
        scanning a heap that can be mostly tombstones."""
        self._pre_pop()  # materialise any deferred events first
        return self._live
