"""Lightweight event tracing.

The tracer records ``(time, category, payload)`` tuples.  It is used by
tests to assert ordering properties (e.g. a task never starts before
its dependencies complete) and by the bench harness to compute derived
statistics such as time spent in the JOSS sampling phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    payload: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only trace buffer with per-category filtering.

    Tracing can be disabled wholesale (``enabled=False``) or narrowed to
    a set of categories, in which case other records are dropped at the
    emit site with negligible overhead.
    """

    def __init__(self, enabled: bool = True, categories: Iterable[str] | None = None) -> None:
        self.enabled = enabled
        self._categories = frozenset(categories) if categories is not None else None
        self._records: list[TraceRecord] = []

    def emit(self, time: float, category: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        self._records.append(TraceRecord(time, category, payload))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, category: str | None = None) -> list[TraceRecord]:
        """All records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        self._records.clear()
