"""Lightweight event tracing.

The tracer records ``(time, category, payload)`` tuples.  It is used by
tests to assert ordering properties (e.g. a task never starts before
its dependencies complete) and by the bench harness to compute derived
statistics such as time spent in the JOSS sampling phase.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    payload: dict[str, Any] = field(default_factory=dict)


def render_chrome_trace(
    records: Iterable["TraceRecord"], process_name: str = "repro-sim"
) -> dict:
    """Render trace records as a Chrome trace-event JSON object.

    Mapping (simulated seconds become microseconds):

    * ``activity-start`` / ``activity-end`` pairs per core become
      complete ("X") duration events on track ``tid = core id``,
      named after the kernel;
    * ``freq-change`` records become counter ("C") events, one
      counter track per DVFS domain — Perfetto renders these as
      step plots;
    * every other category becomes an instant ("i") event carrying
      its payload as ``args``.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
         "args": {"name": process_name}},
    ]
    open_per_core: dict[int, tuple[str, float]] = {}
    named_tids: set[int] = set()

    def us(t: float) -> float:
        return t * 1e6

    for rec in records:
        if rec.category == "activity-start":
            open_per_core[rec.payload["core"]] = (
                rec.payload["kernel"], rec.time,
            )
        elif rec.category == "activity-end":
            core = rec.payload["core"]
            started = open_per_core.pop(core, None)
            if started is None:
                continue
            kernel, t0 = started
            if core not in named_tids:
                named_tids.add(core)
                events.append(
                    {"name": "thread_name", "ph": "M", "pid": 0,
                     "tid": core, "args": {"name": f"core {core}"}}
                )
            events.append(
                {"name": kernel, "cat": "activity", "ph": "X",
                 "pid": 0, "tid": core,
                 "ts": us(t0), "dur": us(rec.time - t0)}
            )
        elif rec.category == "freq-change":
            domain = rec.payload.get("domain", "?")
            events.append(
                {"name": f"freq {domain} (GHz)", "cat": "dvfs",
                 "ph": "C", "pid": 0, "ts": us(rec.time),
                 "args": {"GHz": rec.payload.get("freq", 0.0)}}
            )
        else:
            events.append(
                {"name": rec.category, "cat": rec.category, "ph": "i",
                 "pid": 0, "tid": 0, "ts": us(rec.time), "s": "g",
                 "args": dict(rec.payload)}
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


class Tracer:
    """Append-only trace buffer with per-category filtering.

    Tracing can be disabled wholesale (``enabled=False``) or narrowed to
    a set of categories, in which case other records are dropped at the
    emit site with negligible overhead.
    """

    def __init__(self, enabled: bool = True, categories: Iterable[str] | None = None) -> None:
        self.enabled = enabled
        self._categories = frozenset(categories) if categories is not None else None
        self._records: list[TraceRecord] = []

    def emit(self, time: float, category: str, **payload: Any) -> None:
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        self._records.append(TraceRecord(time, category, payload))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(self, category: str | None = None) -> list[TraceRecord]:
        """All records, optionally filtered by category."""
        if category is None:
            return list(self._records)
        return [r for r in self._records if r.category == category]

    def clear(self) -> None:
        self._records.clear()

    # ------------------------------------------------------------------
    # Chrome trace-event export (Perfetto / chrome://tracing)
    # ------------------------------------------------------------------
    def to_chrome_trace(self, process_name: str = "repro-sim") -> dict:
        """The trace as a Chrome trace-event JSON object.

        See :func:`render_chrome_trace` for the record-to-event
        mapping; the same renderer backs
        :class:`repro.obs.exporters.ChromeTraceExporter`, so both
        paths produce identical JSON for identical record streams.
        """
        return render_chrome_trace(self._records, process_name)

    def save_chrome_trace(
        self, path: str | Path, process_name: str = "repro-sim"
    ) -> Path:
        """Write :meth:`to_chrome_trace` JSON to ``path``."""
        path = Path(path)
        path.write_text(json.dumps(self.to_chrome_trace(process_name)))
        return path
