"""The scheduler interface and the runtime context handed to schedulers.

The runtime defines the contract; concrete schedulers (GRWS, ERASE,
Aequitas, STEER, JOSS) live in :mod:`repro.schedulers` and
:mod:`repro.core` and implement :class:`Scheduler`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import FrequencyError

if TYPE_CHECKING:  # pragma: no cover
    from repro.exec_model.engine import ExecutionEngine
    from repro.hw.cluster import Cluster
    from repro.hw.core import Core
    from repro.hw.dvfs import DvfsController
    from repro.hw.platform import Platform
    from repro.hw.sensor import PowerSensor
    from repro.runtime.metrics import RunMetrics
    from repro.runtime.placement import Placement
    from repro.runtime.queues import WorkQueue
    from repro.runtime.task import Task
    from repro.sim.engine import Simulator
    from repro.sim.rng import RngStreams
    from repro.sim.trace import Tracer


class RuntimeContext:
    """Everything a scheduler may observe and actuate.

    Handed to the scheduler via :meth:`Scheduler.bind` before the run
    starts.  Schedulers must go through the DVFS controllers (which
    model transition latency) rather than poking domain frequencies.
    """

    def __init__(
        self,
        sim: "Simulator",
        platform: "Platform",
        engine: "ExecutionEngine",
        queues: dict[int, "WorkQueue"],
        cluster_dvfs: dict[int, "DvfsController"],
        memory_dvfs: "DvfsController",
        rng: "RngStreams",
        metrics: "RunMetrics | None" = None,
        sensor: "PowerSensor | None" = None,
        tracer: "Tracer | None" = None,
        registry=None,
    ) -> None:
        self.sim = sim
        self.platform = platform
        self.engine = engine
        self.queues = queues
        self.cluster_dvfs = cluster_dvfs
        self.memory_dvfs = memory_dvfs
        self.rng = rng
        #: Run metrics the scheduler may annotate (sampling time, extras).
        self.metrics = metrics
        #: The run's power sensor (health monitoring reads its liveness).
        self.sensor = sensor
        #: Optional tracer for scheduler-emitted events.
        self.tracer = tracer
        #: Optional :class:`repro.obs.MetricRegistry` the scheduler may
        #: publish counters to (None = no observer installed).
        self.registry = registry

    @property
    def now(self) -> float:
        return self.sim.now

    @property
    def bus(self):
        """The run's event bus (:mod:`repro.obs`); always present."""
        return self.sim.obs

    def request_cluster_freq(self, cluster: "Cluster", f_ghz: float) -> float:
        """Ask the cluster's DVFS controller for ``f_ghz`` (snapped)."""
        return self._request(self.cluster_dvfs[cluster.cluster_id], f_ghz)

    def request_memory_freq(self, f_ghz: float) -> float:
        return self._request(self.memory_dvfs, f_ghz)

    def _request(self, ctl: "DvfsController", f_ghz: float) -> float:
        """Forward a request, absorbing *transient* actuator failures
        (fault injection): the scheduler keeps going at the current
        frequency and the incident is counted.  Genuine out-of-range
        errors (mis-scaled callers) still propagate."""
        try:
            return ctl.request(f_ghz)
        except FrequencyError as exc:
            if not getattr(exc, "transient", False):
                raise
            if self.metrics is not None:
                self.metrics.extras["dvfs_transient_errors"] = (
                    self.metrics.extras.get("dvfs_transient_errors", 0) + 1
                )
            return ctl.domain.freq

    def busy_core_count(self) -> int:
        """Instantaneous number of working cores (task concurrency)."""
        return self.engine.busy_core_count()

    def cluster_active_tasks(self, cluster: "Cluster") -> int:
        """Number of busy cores in one cluster."""
        return sum(1 for c in cluster.cores if c.busy)


class Scheduler(abc.ABC):
    """Contract every scheduler implements.

    Lifecycle:

    1. ``bind(ctx)`` — once, before the run.
    2. ``on_run_begin()`` — simulated time 0.
    3. ``place(task)`` — for every task when it becomes ready; returns
       the :class:`~repro.runtime.placement.Placement`.
    4. ``on_task_execute(task, core)`` — when a worker begins the task
       (this is where DVFS requests and frequency coordination happen).
    5. ``on_task_complete(task)`` — when the last partition finishes.
    6. ``on_run_end()`` — after the last task.
    """

    #: Short name used in reports.
    name: str = "scheduler"

    def __init__(self) -> None:
        self.ctx: Optional[RuntimeContext] = None
        # Per-core steal-victim lists; topology-only, so implementations
        # memoise here (cleared on bind — a fresh platform).
        self._steal_cache: dict[int, list["Core"]] = {}

    def bind(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx
        self._steal_cache = {}

    def on_run_begin(self) -> None:  # pragma: no cover - default no-op
        pass

    @abc.abstractmethod
    def place(self, task: "Task") -> "Placement":
        """Choose cluster / core count / frequency requests for a task."""

    def on_task_execute(self, task: "Task", core: "Core") -> None:
        """A worker is about to run ``task`` on ``core``.  Default: if
        the placement carries frequency requests, forward them through
        the coordination policy (none here — raw requests)."""
        assert self.ctx is not None
        p = task.placement
        if p is None:
            return
        if p.f_c is not None:
            self.ctx.request_cluster_freq(p.cluster, p.f_c)
        if p.f_m is not None:
            self.ctx.request_memory_freq(p.f_m)

    def on_task_complete(self, task: "Task") -> None:  # pragma: no cover
        pass

    def on_workload_complete(self) -> None:  # pragma: no cover
        """The last task just finished (still inside the simulation).
        Schedulers with self-rescheduling timers must cancel them here,
        or the event loop never drains."""
        pass

    def on_run_end(self) -> None:  # pragma: no cover - default no-op
        pass

    def steal_candidates(self, core: "Core") -> Sequence["Core"]:
        """Cores this idle ``core`` may steal from.  Default: cores of
        the same *type* (preserves the scheduler's core-type choice,
        paper section 5.3); on per-core-DVFS platforms that spans the
        equivalent single-core clusters."""
        if self.ctx is not None:
            hit = self._steal_cache.get(core.core_id)
            if hit is None:
                hit = self._steal_cache[core.core_id] = [
                    c
                    for c in self.ctx.platform.cores_of_type(core.core_type.name)
                    if c is not core
                ]
            return hit
        return [c for c in core.cluster.cores if c is not core]

    def describe(self) -> str:
        return self.name
