"""Placement decisions — the scheduler's answer for one task.

A placement fixes the paper's four knobs for a task: core type (via
the target cluster), number of cores, and requested core / memory
frequencies.  ``f_c``/``f_m`` of ``None`` mean "leave the knob alone"
(how GRWS and ERASE behave).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.cluster import Cluster
    from repro.hw.core import Core


@dataclass
class Placement:
    """Resource + DVFS choice for one task."""

    cluster: "Cluster"
    n_cores: int = 1
    f_c: Optional[float] = None
    f_m: Optional[float] = None
    #: Pin the task to a specific home core (used by sampling); when
    #: None the executor picks a random core of the cluster.
    home_core: Optional["Core"] = None

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise SchedulingError("n_cores must be >= 1")
        if self.n_cores > self.cluster.n_cores:
            raise SchedulingError(
                f"n_cores={self.n_cores} exceeds cluster size "
                f"{self.cluster.n_cores}"
            )
        if self.home_core is not None and self.home_core.cluster is not self.cluster:
            raise SchedulingError("home core must belong to the target cluster")

    @property
    def core_type_name(self) -> str:
        return self.cluster.core_type.name

    def describe(self) -> str:
        """Paper-style ``<T_C, N_C, f_C, f_M>`` string."""
        fc = f"{self.f_c:.3f}" if self.f_c is not None else "-"
        fm = f"{self.f_m:.3f}" if self.f_m is not None else "-"
        return f"<{self.core_type_name}, {self.n_cores}, {fc}, {fm}>"
