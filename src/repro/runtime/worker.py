"""Per-core worker logic.

Each core has a worker that, whenever it goes idle (or is woken by a
dispatch), pops work from its own queue, falls back to stealing from
the scheduler-approved victim set, and otherwise sleeps until the next
wake.  Moldable tasks are partitioned at start: the initiating worker
runs partition 0 and pushes the sibling partitions to the front of the
queues of other cores in the same cluster (paper section 5.3 — cores
finishing a partition continue fetching without waiting for siblings).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime.queues import QueueItem
from repro.runtime.task import Task, TaskPartition

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.executor import Executor

#: Worker fetches run after completions / dispatches at the same time.
FETCH_PRIORITY = 10


#: ``_FACT[n]`` = n!; victim-scan orders for up to ``len(_FACT)``
#: candidates are drawn as one uniform integer and Lehmer-decoded (one
#: RNG call instead of a full ``permutation`` array round-trip).
_FACT = [1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800, 39916800]


class Worker:
    """State machine driving one core."""

    def __init__(self, executor: "Executor", core: "Core") -> None:
        self.executor = executor
        self.core = core
        self.queue = executor.queues[core.core_id]
        self._in_fetch = False
        # Attribute shortcut: wake runs once or more per task, so the
        # executor attribute chain is hot.
        self._queued_total = executor.queued_total

    def wake(self) -> None:
        """Fetch work now if the core is idle (re-entrant wakes of the
        same worker no-op).  The fetch runs synchronously instead of
        through a zero-delay event: a wake with nothing queued anywhere
        is dropped outright, and whoever queues work next re-wakes every
        core eligible to take it (dispatch wakes the home worker and all
        idle steal candidates; partition starts wake their siblings), so
        no separate fetch event is ever needed."""
        core = self.core
        if core.busy or not core._online or self._in_fetch:
            return
        if self._queued_total.n == 0:
            return
        self._in_fetch = True
        try:
            item: Optional[QueueItem] = self.queue.pop_own()
            if item is None:
                item = self._steal()
            if item is None:
                return  # sleep until next wake
            if isinstance(item, TaskPartition):
                self._start_partition(item)
            else:
                self._start_task(item)
        finally:
            self._in_fetch = False

    def _fetch(self) -> None:
        """Event-compatible alias for :meth:`wake` (fault-injection and
        legacy callers scheduled fetch attempts as events)."""
        self.wake()

    def _steal(self) -> Optional[QueueItem]:
        if self._queued_total.n == 0:  # nothing queued anywhere
            return None
        ex = self.executor
        candidates = ex.scheduler.steal_candidates(self.core)  # read-only
        if not candidates:
            return None
        # Only victims with queued work matter: the relative order of
        # the non-empty victims under a uniform random permutation of
        # all candidates is itself a uniform random permutation, so
        # filtering first is distribution-equivalent and skips the RNG
        # draw entirely when at most one victim has anything to take.
        queues = ex._queues
        pool = [c for c in candidates if queues[c.slot]._q]
        n = len(pool)
        if n == 0:
            return None
        if n == 1:
            victim = pool[0]
        elif n < len(_FACT):
            # Random victim from a single RNG draw: a uniform integer
            # in [0, n!) Lehmer-decoded, taking the first non-empty
            # victim (= the permutation's first element here, since
            # every pool entry is non-empty).
            code = int(ex.steal_rng.integers(_FACT[n]))
            victim = pool[code // _FACT[n - 1]]
        else:
            order = ex.steal_rng.permutation(n)
            victim = pool[int(order[0])]
        item = queues[victim.slot].pop_steal()
        if item is None:  # raced empty (cannot happen serially)
            return None
        ex.metrics.steals += 1
        if isinstance(item, Task):
            item.meta["stolen"] = True
        return item

    # ------------------------------------------------------------------
    def _start_task(self, task: Task) -> None:
        """Begin a whole task on this core, partitioning if moldable."""
        ex = self.executor
        placement = task.placement
        assert placement is not None, "dispatched task must carry a placement"
        # The actual cluster is this core's cluster (a cross-cluster
        # steal under GRWS runs the task where it was stolen to).
        # Hot-unplugged cores cannot host sibling partitions, so a
        # moldable task shrinks to what the cluster still offers.
        online = self.core.cluster._n_online
        n_cores = min(placement.n_cores, max(1, online))
        task.partitions_total = n_cores
        task.partitions_remaining = n_cores
        task.mark_running(ex.sim.now)
        ex.scheduler.on_task_execute(task, self.core)
        if n_cores > 1:
            siblings = self._choose_siblings(n_cores - 1)
            for i, sib in enumerate(siblings):
                part = TaskPartition(task, i + 1)
                ex._queues[sib.slot].push_front(part)
                ex._workers[sib.slot].wake()
        ex.engine.start_activity(
            task.kernel,
            self.core,
            n_cores_total=n_cores,
            payload=TaskPartition(task, 0),
        )

    def _choose_siblings(self, count: int) -> list["Core"]:
        """Pick ``count`` other cores of this cluster for partitions —
        idle cores first, then shortest queue."""
        others = [
            c for c in self.core.cluster.cores
            if c is not self.core and c.online
        ]
        queues = self.executor._queues
        others.sort(key=lambda c: (c.busy, len(queues[c.slot])))
        return others[:count]

    def _start_partition(self, part: TaskPartition) -> None:
        self.executor.engine.start_activity(
            part.kernel,
            self.core,
            n_cores_total=part.task.partitions_total,
            payload=part,
        )
