"""Per-core worker logic.

Each core has a worker that, whenever it goes idle (or is woken by a
dispatch), pops work from its own queue, falls back to stealing from
the scheduler-approved victim set, and otherwise sleeps until the next
wake.  Moldable tasks are partitioned at start: the initiating worker
runs partition 0 and pushes the sibling partitions to the front of the
queues of other cores in the same cluster (paper section 5.3 — cores
finishing a partition continue fetching without waiting for siblings).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.runtime.queues import QueueItem
from repro.runtime.task import Task, TaskPartition

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.runtime.executor import Executor

#: Worker fetches run after completions / dispatches at the same time.
FETCH_PRIORITY = 10


class Worker:
    """State machine driving one core."""

    def __init__(self, executor: "Executor", core: "Core") -> None:
        self.executor = executor
        self.core = core
        self.queue = executor.queues[core.core_id]
        self._fetch_scheduled = False

    def wake(self) -> None:
        """Schedule a fetch attempt if the core is idle and none is
        already pending (coalesces thundering-herd wakes)."""
        if self.core.busy or not self.core.online or self._fetch_scheduled:
            return
        self._fetch_scheduled = True
        self.executor.sim.schedule(0.0, self._fetch, priority=FETCH_PRIORITY)

    def _fetch(self) -> None:
        self._fetch_scheduled = False
        if self.core.busy or not self.core.online:
            return
        item: Optional[QueueItem] = self.queue.pop_own()
        if item is None:
            item = self._steal()
        if item is None:
            return  # sleep until next wake
        if isinstance(item, TaskPartition):
            self._start_partition(item)
        else:
            self._start_task(item)

    def _steal(self) -> Optional[QueueItem]:
        scheduler = self.executor.scheduler
        candidates = scheduler.steal_candidates(self.core)  # read-only
        if not candidates:
            return None
        order = self.executor.steal_rng.permutation(len(candidates))
        for idx in order:
            victim = candidates[int(idx)]
            item = self.executor.queues[victim.core_id].pop_steal()
            if item is not None:
                self.executor.metrics.steals += 1
                if isinstance(item, Task):
                    item.meta["stolen"] = True
                return item
        return None

    # ------------------------------------------------------------------
    def _start_task(self, task: Task) -> None:
        """Begin a whole task on this core, partitioning if moldable."""
        ex = self.executor
        placement = task.placement
        assert placement is not None, "dispatched task must carry a placement"
        # The actual cluster is this core's cluster (a cross-cluster
        # steal under GRWS runs the task where it was stolen to).
        # Hot-unplugged cores cannot host sibling partitions, so a
        # moldable task shrinks to what the cluster still offers.
        online = len(self.core.cluster.online_cores())
        n_cores = min(placement.n_cores, max(1, online))
        task.partitions_total = n_cores
        task.partitions_remaining = n_cores
        task.mark_running(ex.sim.now)
        ex.scheduler.on_task_execute(task, self.core)
        if n_cores > 1:
            siblings = self._choose_siblings(n_cores - 1)
            for i, sib in enumerate(siblings):
                part = TaskPartition(task, i + 1)
                ex.queues[sib.core_id].push_front(part)
                ex.workers[sib.core_id].wake()
        ex.engine.start_activity(
            task.kernel,
            self.core,
            n_cores_total=n_cores,
            payload=TaskPartition(task, 0),
        )

    def _choose_siblings(self, count: int) -> list["Core"]:
        """Pick ``count`` other cores of this cluster for partitions —
        idle cores first, then shortest queue."""
        others = [
            c for c in self.core.cluster.cores
            if c is not self.core and c.online
        ]
        others.sort(key=lambda c: (c.busy, len(self.executor.queues[c.core_id])))
        return others[:count]

    def _start_partition(self, part: TaskPartition) -> None:
        self.executor.engine.start_activity(
            part.kernel,
            self.core,
            n_cores_total=part.task.partitions_total,
            payload=part,
        )
