"""Task-parallel runtime (the XiTAO-like substrate).

Implements the execution model the paper's schedulers plug into:
a task DAG released dynamically as dependencies complete, per-core
work queues with work stealing, moldable multi-core task execution
(intra-task parallelism with partition join), and the executor that
binds the runtime to the simulated platform, DVFS controllers and
power/energy instrumentation.
"""

from repro.runtime.task import Task, TaskPartition, TaskState
from repro.runtime.dag import TaskGraph
from repro.runtime.placement import Placement
from repro.runtime.queues import WorkQueue
from repro.runtime.scheduler_api import RuntimeContext, Scheduler
from repro.runtime.metrics import KernelStats, RunMetrics
from repro.runtime.executor import Executor

__all__ = [
    "Task",
    "TaskPartition",
    "TaskState",
    "TaskGraph",
    "Placement",
    "WorkQueue",
    "RuntimeContext",
    "Scheduler",
    "KernelStats",
    "RunMetrics",
    "Executor",
]
