"""Run metrics: what the paper measures per benchmark execution.

Mirrors the paper's methodology (section 6.1): energy is accumulated
from 5 ms power-sensor samples over the whole execution; we addition-
ally keep the exact integral as an oracle, plus scheduler-behaviour
counters used in the analysis sections (placement mix, steals, DVFS
transitions, sampling-phase share).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


@dataclass
class KernelStats:
    """Per-kernel execution statistics."""

    invocations: int = 0
    total_time: float = 0.0
    #: Total ready-to-start queueing delay (scheduling latency).
    total_wait: float = 0.0
    #: Sum of (deadline - completion) over deadline-carrying tasks:
    #: positive = finished early, negative = late (open-arrival runs).
    total_slack: float = 0.0
    #: Number of completions that carried a deadline annotation.
    slack_samples: int = 0
    placements: dict[str, int] = field(default_factory=dict)

    @property
    def mean_time(self) -> float:
        return self.total_time / self.invocations if self.invocations else 0.0

    @property
    def mean_wait(self) -> float:
        return self.total_wait / self.invocations if self.invocations else 0.0

    @property
    def mean_slack(self) -> float:
        return self.total_slack / self.slack_samples if self.slack_samples else 0.0

    def record(
        self, duration: float, placement_key: str, wait: float = 0.0
    ) -> None:
        self.invocations += 1
        self.total_time += duration
        self.total_wait += max(0.0, wait)
        self.placements[placement_key] = self.placements.get(placement_key, 0) + 1

    def record_slack(self, slack: float) -> None:
        """Per-kernel slack of one deadline-carrying completion."""
        self.total_slack += slack
        self.slack_samples += 1


@dataclass
class RunMetrics:
    """Results of one (workload, scheduler) execution."""

    scheduler: str = ""
    workload: str = ""
    #: Wall time from t=0 to the last task completion (seconds).
    makespan: float = 0.0
    #: Sensor-sampled energies (the paper's methodology).
    cpu_energy: float = 0.0
    mem_energy: float = 0.0
    #: Exact integrals (test oracle; close to the sampled values).
    cpu_energy_exact: float = 0.0
    mem_energy_exact: float = 0.0
    tasks_executed: int = 0
    steals: int = 0
    cluster_freq_transitions: int = 0
    memory_freq_transitions: int = 0
    #: Simulated time spent in the JOSS/STEER sampling phase.
    sampling_time: float = 0.0
    #: Degradation entries (health monitor fallbacks, repro.core.health).
    fallback_count: int = 0
    #: Simulated time with at least one kernel in degraded mode.
    degraded_time: float = 0.0
    #: Exact energy (J) attributed to degraded-mode windows.
    degraded_energy: float = 0.0
    #: Open-arrival accounting (zero on closed-system runs): DAG
    #: instances released / completed, instances that finished past
    #: their absolute deadline, and tardiness = max(0, completion -
    #: deadline) summed / maximised over missed instances.
    dags_arrived: int = 0
    dags_completed: int = 0
    deadline_misses: int = 0
    total_tardiness: float = 0.0
    max_tardiness: float = 0.0
    #: Scheduler-reported model/selection bookkeeping (free-form).
    extras: dict = field(default_factory=dict)
    per_kernel: dict[str, KernelStats] = field(default_factory=dict)

    @property
    def total_energy(self) -> float:
        """Total (CPU + memory) sensor energy — the paper's headline metric."""
        return self.cpu_energy + self.mem_energy

    @property
    def total_energy_exact(self) -> float:
        return self.cpu_energy_exact + self.mem_energy_exact

    @property
    def sampling_fraction(self) -> float:
        return self.sampling_time / self.makespan if self.makespan > 0 else 0.0

    def kernel_stats(self, kernel_name: str) -> KernelStats:
        ks = self.per_kernel.get(kernel_name)
        if ks is None:
            ks = self.per_kernel[kernel_name] = KernelStats()
        return ks

    def summary(self) -> str:
        return (
            f"{self.workload:>14s} | {self.scheduler:<16s} | "
            f"time {self.makespan * 1e3:9.2f} ms | "
            f"E_cpu {self.cpu_energy:8.3f} J | E_mem {self.mem_energy:8.3f} J | "
            f"E_tot {self.total_energy:8.3f} J"
        )

    def publish_to(self, registry, **extra_labels: str) -> None:
        """Publish this run into a :class:`repro.obs.MetricRegistry`.

        Counters accumulate across runs (Prometheus semantics); gauges
        hold the latest run's value per (workload, scheduler) series.
        Label values are the workload/scheduler names — bounded sets —
        never task ids or hashes (the registry's cardinality guard
        enforces that discipline).
        """
        labels = {
            "workload": self.workload or "?",
            "scheduler": self.scheduler or "?",
            **extra_labels,
        }
        names = tuple(labels)
        registry.counter(
            "repro_runs_total", "completed executor runs", names
        ).inc(**labels)
        registry.counter(
            "repro_tasks_executed_total", "tasks completed", names
        ).inc(self.tasks_executed, **labels)
        registry.counter(
            "repro_steals_total", "work-stealing migrations", names
        ).inc(self.steals, **labels)
        registry.counter(
            "repro_dvfs_transitions_total", "applied DVFS transitions",
            (*names, "domain"),
        ).inc(self.cluster_freq_transitions, domain="cluster", **labels)
        registry.counter(
            "repro_dvfs_transitions_total", "applied DVFS transitions",
            (*names, "domain"),
        ).inc(self.memory_freq_transitions, domain="memory", **labels)
        registry.gauge(
            "repro_run_makespan_seconds", "makespan of the latest run", names
        ).set(self.makespan, **labels)
        for rail, joules in (("cpu", self.cpu_energy), ("mem", self.mem_energy)):
            registry.gauge(
                "repro_run_energy_joules",
                "sensor energy of the latest run per rail",
                (*names, "rail"),
            ).set(joules, rail=rail, **labels)
        registry.gauge(
            "repro_run_sampling_seconds",
            "sampling-phase time of the latest run", names,
        ).set(self.sampling_time, **labels)
        registry.histogram(
            "repro_run_makespan_histogram_seconds",
            "distribution of run makespans", names,
        ).observe(self.makespan, **labels)
        if self.fallback_count or self.degraded_time:
            registry.counter(
                "repro_degraded_entries_total",
                "health-monitor fallback entries", names,
            ).inc(self.fallback_count, **labels)
            registry.counter(
                "repro_degraded_seconds_total",
                "simulated seconds spent degraded", names,
            ).inc(self.degraded_time, **labels)
        if self.dags_arrived:
            registry.counter(
                "repro_dags_arrived_total",
                "open-arrival DAG instances released", names,
            ).inc(self.dags_arrived, **labels)
            registry.counter(
                "repro_dags_completed_total",
                "open-arrival DAG instances completed", names,
            ).inc(self.dags_completed, **labels)
            registry.counter(
                "repro_deadline_misses_total",
                "DAG instances completed past their deadline", names,
            ).inc(self.deadline_misses, **labels)
            registry.counter(
                "repro_tardiness_seconds_total",
                "summed tardiness of missed deadlines", names,
            ).inc(self.total_tardiness, **labels)

    # ------------------------------------------------------------------
    # Serialisation (results archiving)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict of everything measured."""
        return {
            "scheduler": self.scheduler,
            "workload": self.workload,
            "makespan": self.makespan,
            "cpu_energy": self.cpu_energy,
            "mem_energy": self.mem_energy,
            "cpu_energy_exact": self.cpu_energy_exact,
            "mem_energy_exact": self.mem_energy_exact,
            "tasks_executed": self.tasks_executed,
            "steals": self.steals,
            "cluster_freq_transitions": self.cluster_freq_transitions,
            "memory_freq_transitions": self.memory_freq_transitions,
            "sampling_time": self.sampling_time,
            "fallback_count": self.fallback_count,
            "degraded_time": self.degraded_time,
            "degraded_energy": self.degraded_energy,
            "dags_arrived": self.dags_arrived,
            "dags_completed": self.dags_completed,
            "deadline_misses": self.deadline_misses,
            "total_tardiness": self.total_tardiness,
            "max_tardiness": self.max_tardiness,
            "extras": {
                k: v for k, v in self.extras.items()
                if isinstance(v, (int, float, str, bool, list, dict))
            },
            "per_kernel": {
                name: {
                    "invocations": ks.invocations,
                    "total_time": ks.total_time,
                    "total_wait": ks.total_wait,
                    "total_slack": ks.total_slack,
                    "slack_samples": ks.slack_samples,
                    "placements": dict(ks.placements),
                }
                for name, ks in self.per_kernel.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        m = cls(scheduler=data["scheduler"], workload=data["workload"])
        for key in (
            "makespan", "cpu_energy", "mem_energy", "cpu_energy_exact",
            "mem_energy_exact", "tasks_executed", "steals",
            "cluster_freq_transitions", "memory_freq_transitions",
            "sampling_time",
        ):
            setattr(m, key, data[key])
        for key in (
            "fallback_count", "degraded_time", "degraded_energy",
            "dags_arrived", "dags_completed", "deadline_misses",
            "total_tardiness", "max_tardiness",
        ):
            setattr(m, key, data.get(key, 0))
        m.extras = dict(data.get("extras", {}))
        for name, ks in data.get("per_kernel", {}).items():
            stats = m.kernel_stats(name)
            stats.invocations = ks["invocations"]
            stats.total_time = ks["total_time"]
            stats.total_wait = ks.get("total_wait", 0.0)
            stats.total_slack = ks.get("total_slack", 0.0)
            stats.slack_samples = ks.get("slack_samples", 0)
            stats.placements = dict(ks["placements"])
        return m


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def average_run_metrics(runs: Sequence[RunMetrics]) -> RunMetrics:
    """Arithmetic mean over repetitions of the same (workload, scheduler).

    Continuous quantities are averaged as floats; event counts (steals,
    DVFS transitions) are averaged and *rounded to nearest* — truncation
    would bias e.g. a 2/3 steal split down to 2.  Numeric ``extras``
    fields present in every repetition are averaged too (all-int fields
    round to nearest); anything else keeps repetition 0's value.
    Per-kernel stats are structural (placements, invocations) and the
    first repetition is representative.
    """
    if not runs:
        raise ValueError("cannot average zero runs")
    n = len(runs)
    first = runs[0]
    avg = RunMetrics(scheduler=first.scheduler, workload=first.workload)
    for name in (
        "makespan", "cpu_energy", "mem_energy",
        "cpu_energy_exact", "mem_energy_exact", "sampling_time",
        "degraded_time", "degraded_energy",
        "total_tardiness", "max_tardiness",
    ):
        setattr(avg, name, sum(getattr(m, name) for m in runs) / n)
    avg.tasks_executed = first.tasks_executed
    for name in (
        "steals", "cluster_freq_transitions", "memory_freq_transitions",
        "fallback_count", "dags_arrived", "dags_completed",
        "deadline_misses",
    ):
        setattr(avg, name, round(sum(getattr(m, name) for m in runs) / n))
    extras: dict = {}
    for key, value in first.extras.items():
        values = [m.extras.get(key) for m in runs]
        if _is_number(value) and all(_is_number(v) for v in values):
            mean = sum(values) / n
            extras[key] = round(mean) if all(
                isinstance(v, int) for v in values
            ) else mean
        else:
            extras[key] = value
    avg.extras = extras
    avg.per_kernel = first.per_kernel
    return avg
