"""Tasks and task partitions.

A task is one invocation of a kernel.  Moldable execution (``N_C > 1``)
splits a starting task into partitions, one per core; the partition
that finishes last completes the task and wakes its dependents (paper
section 5.3).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.errors import SchedulingError
from repro.exec_model.kernels import KernelSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.placement import Placement


class TaskState(enum.Enum):
    PENDING = "pending"      # dependencies not yet satisfied
    READY = "ready"          # dispatched to a work queue
    RUNNING = "running"      # at least one partition executing
    DONE = "done"


class Task:
    """One node of the task DAG."""

    __slots__ = (
        "tid",
        "kernel",
        "state",
        "deps_remaining",
        "dependents",
        "placement",
        "partitions_total",
        "partitions_remaining",
        "ready_time",
        "start_time",
        "end_time",
        "exec_time",
        "meta",
    )

    def __init__(self, tid: int, kernel: KernelSpec) -> None:
        self.tid = tid
        self.kernel = kernel
        self.state = TaskState.PENDING
        self.deps_remaining = 0
        self.dependents: list["Task"] = []
        self.placement: Optional["Placement"] = None
        self.partitions_total = 0
        self.partitions_remaining = 0
        self.ready_time: float = float("nan")
        self.start_time: float = float("nan")
        self.end_time: float = float("nan")
        #: Longest single-partition *execution* time (queue wait and
        #: partition stagger excluded) — what a runtime timing its task
        #: bodies measures; used for sampling.
        self.exec_time: float = 0.0
        #: Scratch space for schedulers (e.g. sampling markers).
        self.meta: dict = {}

    @property
    def duration(self) -> float:
        """Measured wall time from first partition start to task end."""
        return self.end_time - self.start_time

    def mark_ready(self, now: float) -> None:
        if self.state is not TaskState.PENDING or self.deps_remaining != 0:
            raise SchedulingError(f"task {self.tid} cannot become ready")
        self.state = TaskState.READY
        self.ready_time = now

    def mark_running(self, now: float) -> None:
        if self.state is TaskState.READY:
            self.state = TaskState.RUNNING
            self.start_time = now

    def mark_done(self, now: float) -> None:
        if self.state is not TaskState.RUNNING:
            raise SchedulingError(f"task {self.tid} finished without running")
        self.state = TaskState.DONE
        self.end_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task({self.tid}, {self.kernel.name}, {self.state.value})"


class TaskPartition:
    """One core's share of a (possibly moldable) task."""

    __slots__ = ("task", "index")

    def __init__(self, task: Task, index: int) -> None:
        self.task = task
        self.index = index

    @property
    def kernel(self) -> KernelSpec:
        return self.task.kernel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Partition({self.task.tid}.{self.index})"
