"""Task DAG construction and dynamic release.

Workloads build a :class:`TaskGraph` up front (tasks + dependency
edges); during execution the graph releases tasks as their dependencies
complete, which is how task-based runtimes expose dynamic parallelism.
The *degree of parallelism* (``dop``) statistic matches the paper's
definition: total tasks divided by the length of the longest path.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import WorkloadError
from repro.exec_model.kernels import KernelSpec
from repro.runtime.task import Task, TaskState


class TaskGraph:
    """A DAG of tasks with dependency bookkeeping."""

    def __init__(self, name: str = "dag") -> None:
        self.name = name
        self.tasks: list[Task] = []

    @classmethod
    def combine(cls, graphs: Sequence["TaskGraph"], name: str | None = None) -> "TaskGraph":
        """Merge independent graphs into one (multi-programmed
        co-scheduling: the applications share the platform but have no
        cross-dependencies).  Tasks are re-created in order, so the
        inputs stay reusable."""
        if not graphs:
            raise WorkloadError("combine needs at least one graph")
        merged = cls(name or "+".join(g.name for g in graphs))
        for g in graphs:
            deps_of: dict[int, list[Task]] = {t.tid: [] for t in g.tasks}
            for t in g.tasks:
                for d in t.dependents:
                    deps_of[d.tid].append(t)
            mapping: dict[int, Task] = {}
            for t in g.tasks:
                deps = [mapping[p.tid] for p in deps_of[t.tid]]
                mapping[t.tid] = merged.add_task(t.kernel, deps=deps)
        return merged

    def fork(self) -> "TaskGraph":
        """Clone this graph with fresh task state, sharing the (immutable)
        :class:`KernelSpec` objects.

        Execution mutates tasks (state, timestamps, partition counters),
        so a graph is single-run; forking from a pristine template
        rebuilds only the cheap task/edge skeleton instead of re-running
        the workload generator.  The template must itself be unexecuted
        — ``deps_remaining`` is copied verbatim, which is only the
        dependency count while no dependency has completed.  Shared
        kernel objects are what make cross-run memoisation by kernel
        identity (:class:`repro.sweep.fork.ForkCache`) sound.
        """
        if any(t.state is not TaskState.PENDING for t in self.tasks):
            raise WorkloadError(
                f"graph {self.name!r} has started executing; fork from a "
                f"pristine template"
            )
        clone = TaskGraph(self.name)
        mapping: list[Task] = []
        for t in self.tasks:
            c = Task(t.tid, t.kernel)
            c.deps_remaining = t.deps_remaining
            clone.tasks.append(c)
            mapping.append(c)
        for t in self.tasks:
            mapping[t.tid].dependents = [mapping[d.tid] for d in t.dependents]
        return clone

    def add_task(
        self, kernel: KernelSpec, deps: Sequence[Task] | None = None
    ) -> Task:
        """Create a task depending on ``deps`` (must already be in the
        graph, i.e. edges always point forward — guarantees acyclicity).
        Duplicate dependencies are collapsed to one edge."""
        t = Task(len(self.tasks), kernel)
        self.tasks.append(t)
        unique = {id(d): d for d in deps or ()}
        for d in unique.values():
            if d.tid >= t.tid:
                raise WorkloadError("dependencies must precede the task")
            d.dependents.append(t)
            t.deps_remaining += 1
        return t

    def __len__(self) -> int:
        return len(self.tasks)

    def roots(self) -> list[Task]:
        """Tasks with no dependencies (initially ready)."""
        return [t for t in self.tasks if t.deps_remaining == 0]

    def kernels(self) -> list[KernelSpec]:
        """Distinct kernels, in first-appearance order."""
        seen: dict[str, KernelSpec] = {}
        for t in self.tasks:
            seen.setdefault(t.kernel.name, t.kernel)
        return list(seen.values())

    def kernel_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for t in self.tasks:
            counts[t.kernel.name] = counts.get(t.kernel.name, 0) + 1
        return counts

    def critical_path_length(self) -> int:
        """Number of tasks on the longest dependency chain."""
        depth = [0] * len(self.tasks)
        for t in self.tasks:  # tids are topologically ordered by construction
            base = depth[t.tid] + 1
            for d in t.dependents:
                if base > depth[d.tid]:
                    depth[d.tid] = base
        return max((d + 1 for d in depth), default=0) if self.tasks else 0

    def dop(self) -> float:
        """DAG parallelism: total tasks / longest path (paper section 2)."""
        cp = self.critical_path_length()
        return len(self.tasks) / cp if cp else 0.0

    def validate(self) -> None:
        """Sanity checks used by tests and workload constructors."""
        if not self.tasks:
            raise WorkloadError(f"graph {self.name!r} is empty")
        if not self.roots():
            raise WorkloadError(f"graph {self.name!r} has no root tasks")

    def all_done(self) -> bool:
        return all(t.state is TaskState.DONE for t in self.tasks)

    def release_dependents(self, task: Task, now: float) -> Iterable[Task]:
        """Decrement dependents of a completed task; yield newly-ready ones."""
        for d in task.dependents:
            d.deps_remaining -= 1
            if d.deps_remaining == 0:
                d.mark_ready(now)
                yield d
            elif d.deps_remaining < 0:
                raise WorkloadError(f"dependency underflow on task {d.tid}")
