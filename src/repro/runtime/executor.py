"""The executor: one complete run of a task DAG under a scheduler.

Owns the simulator, the execution engine, per-core queues and workers,
the DVFS controllers, and the power sensor; dispatches ready tasks via
the scheduler's placements; collects :class:`RunMetrics` mirroring the
paper's measurement methodology.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SchedulingError
from repro.exec_model.engine import ExecutionEngine
from repro.exec_model.activity import Activity
from repro.hw.dvfs import DvfsController
from repro.hw.platform import Platform
from repro.hw.sensor import PowerSensor
from repro.obs.api import current_observer, resolve_bus
from repro.obs.exporters import bridge_tracer
from repro.runtime.dag import TaskGraph
from repro.runtime.metrics import RunMetrics
from repro.runtime.queues import QueuedTotal, WorkQueue
from repro.runtime.scheduler_api import RuntimeContext, Scheduler
from repro.runtime.task import Task, TaskPartition
from repro.runtime.worker import Worker
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

#: Default DVFS transition latencies (seconds) — cluster PLL relock vs
#: the costlier EMC/DRAM frequency switch.
CPU_DVFS_LATENCY_S = 100e-6
MEM_DVFS_LATENCY_S = 300e-6


class Executor:
    """Runs one task graph on one platform under one scheduler."""

    def __init__(
        self,
        platform: Platform,
        scheduler: Scheduler,
        seed: int = 0,
        sensor_interval_s: float = 0.005,
        sensor_noise_sigma: float = 0.02,
        duration_noise_sigma: float = 0.02,
        cpu_dvfs_latency_s: float = CPU_DVFS_LATENCY_S,
        mem_dvfs_latency_s: float = MEM_DVFS_LATENCY_S,
        cpu_dvfs_stall_s: float = 0.0,
        mem_dvfs_stall_s: float = 0.0,
        tracer: Optional[Tracer] = None,
        faults=None,
        arrivals=None,
        engine_cache_size: int = 8192,
        obs=None,
        shared_breakdowns: Optional[dict] = None,
        strict_retime: bool = False,
    ) -> None:
        self.platform = platform
        self.scheduler = scheduler
        # Observability wiring: an explicit ``obs`` (an Observability
        # handle or a bare EventBus) wins; otherwise the process-default
        # observer installed by ``repro.observe(...)`` is picked up, and
        # with neither the run gets a private silent bus (emit sites are
        # guarded on ``bus.active``, so that costs nothing).
        if obs is None:
            obs = current_observer()
        self.registry = getattr(obs, "metrics", None)
        self.sim = Simulator(obs=resolve_bus(obs))
        self.rng = RngStreams(seed)
        self.seed = seed
        self.tracer = tracer
        if tracer is not None:
            # The legacy tracer is now one bus consumer among several:
            # the bridge forwards exactly the legacy categories with
            # identical payloads and emit order.
            bridge_tracer(self.sim.obs, tracer)
        self.engine = ExecutionEngine(
            self.sim,
            platform,
            self.rng,
            duration_noise_sigma=duration_noise_sigma,
            cache_size=engine_cache_size,
            shared_breakdowns=shared_breakdowns,
            strict_retime=strict_retime,
        )
        self.engine.on_complete = self._on_partition_done
        # One shared occupancy counter across all queues: workers skip
        # fetch events and steal scans while nothing is queued anywhere.
        self.queued_total = QueuedTotal()
        self.queues: dict[int, WorkQueue] = {
            c.core_id: WorkQueue(c.core_id, self.queued_total)
            for c in platform.cores
        }
        self.workers: dict[int, Worker] = {
            c.core_id: Worker(self, c) for c in platform.cores
        }
        # Dense list views of the same objects, indexed by ``Core.slot``
        # (== core_id; the platform checks density at construction).
        # Hot paths — dispatch, completion wake-ups, steal scans — index
        # these instead of hashing through the public dicts.
        self._queues = [self.queues[c.core_id] for c in platform.cores]
        self._workers = [self.workers[c.core_id] for c in platform.cores]
        self.cluster_dvfs: dict[int, DvfsController] = {
            cl.cluster_id: DvfsController(
                self.sim, cl, cpu_dvfs_latency_s, name=f"cpu{cl.cluster_id}",
                transition_stall_s=cpu_dvfs_stall_s,
            )
            for cl in platform.clusters
        }
        self.memory_dvfs = DvfsController(
            self.sim, platform.memory, mem_dvfs_latency_s, name="emc",
            transition_stall_s=mem_dvfs_stall_s,
        )
        # A cluster transition stalls that cluster's cores; an EMC
        # transition stalls every in-flight activity (traffic blocked).
        for cl in platform.clusters:
            self.cluster_dvfs[cl.cluster_id].on_stall.append(
                lambda _c, d, cores=tuple(cl.cores): self.engine.stall_activities(
                    cores, d
                )
            )
        self.memory_dvfs.on_stall.append(
            lambda _c, d: self.engine.stall_activities(None, d)
        )
        for ctl in [*self.cluster_dvfs.values(), self.memory_dvfs]:
            ctl.on_applied.append(self._on_dvfs_applied)
        self.sensor = PowerSensor(
            self.sim,
            self.engine.rail_powers,
            interval_s=sensor_interval_s,
            noise_sigma=sensor_noise_sigma,
            rng=self.rng.stream("sensor"),
            read_pair_fn=self.engine.rail_powers_pair,
        )
        self.steal_rng = self.rng.stream("steal")
        self.place_rng = self.rng.stream("placement")
        self.metrics = RunMetrics(scheduler=scheduler.name)
        self.graph: Optional[TaskGraph] = None
        self._tasks_done = 0
        # Open-system arrivals (an ArrivalPlan, duck-typed): ``None``
        # keeps the closed-system t=0 release path untouched — like a
        # None fault campaign, nothing is constructed and the run stays
        # bit-identical to pre-arrival-subsystem behaviour.
        self.arrivals = arrivals
        self._dag_remaining: Optional[dict[int, int]] = None
        # Set at run start from the scheduler's ``queue_discipline``
        # hint: EDF-style schedulers keep per-core queues sorted by
        # absolute task deadline instead of FIFO.
        self._deadline_order = False
        self.ctx = RuntimeContext(
            sim=self.sim,
            platform=platform,
            engine=self.engine,
            queues=self.queues,
            cluster_dvfs=self.cluster_dvfs,
            memory_dvfs=self.memory_dvfs,
            rng=self.rng,
            metrics=self.metrics,
            sensor=self.sensor,
            tracer=tracer,
            registry=self.registry,
        )
        # Fault injection attaches last so it wraps the final wiring; a
        # None/empty campaign constructs nothing, keeping fault-free
        # runs bit-identical to pre-fault-subsystem behaviour.
        self.injector = None
        if faults is not None and len(faults) > 0:
            from repro.faults.inject import FaultInjector

            self.injector = FaultInjector(faults, self)
            self.injector.install()

    def _on_dvfs_applied(self, ctl: DvfsController) -> None:
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "dvfs_set", self.sim.now,
                domain=ctl.name, freq=ctl.domain.freq,
            )

    # ------------------------------------------------------------------
    # Run control
    # ------------------------------------------------------------------
    def run(self, graph: TaskGraph, max_events: Optional[int] = None) -> RunMetrics:
        """Execute ``graph`` to completion; returns the metrics.

        An executor is single-shot: platform frequencies, queues and
        energy counters carry run state, so build a fresh executor (and
        platform) per run.
        """
        if self.graph is not None:
            raise SchedulingError(
                "executor already ran a graph; create a fresh Executor "
                "(and platform) per run"
            )
        graph.validate()
        self.graph = graph
        self.metrics.workload = graph.name
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "run_started", self.sim.now,
                workload=graph.name, scheduler=self.scheduler.name,
                platform=self.platform.name, tasks=len(graph), seed=self.seed,
            )
        self.scheduler.bind(self.ctx)
        self._deadline_order = (
            getattr(self.scheduler, "queue_discipline", "fifo") == "edf"
        )
        self.scheduler.on_run_begin()
        self.sensor.start()
        if self.arrivals is None:
            for t in graph.roots():
                t.mark_ready(self.sim.now)
                self.dispatch(t)
        else:
            self._schedule_arrivals()
        self.sim.run(max_events=max_events)
        if self._tasks_done != len(graph):
            raise SchedulingError(
                f"run stalled: {self._tasks_done}/{len(graph)} tasks finished "
                f"(deadlock or max_events hit)"
            )
        self.engine.finalize()
        self.scheduler.on_run_end()
        if obs.active:
            obs.emit(
                "run_finished", self.sim.now,
                workload=graph.name, scheduler=self.scheduler.name,
                makespan=self.metrics.makespan,
                cpu_energy=self.metrics.cpu_energy,
                mem_energy=self.metrics.mem_energy,
                tasks_executed=self.metrics.tasks_executed,
            )
        if self.registry is not None:
            self.metrics.publish_to(self.registry)
        return self.metrics

    # ------------------------------------------------------------------
    # Open-system arrivals
    # ------------------------------------------------------------------
    def _schedule_arrivals(self) -> None:
        """Release each DAG instance's roots at its arrival time
        instead of everything at t=0 (open-system mode)."""
        plan = self.arrivals
        assert self.graph is not None
        self._dag_remaining = {inst.index: inst.size for inst in plan.instances}
        roots_by_dag: dict[int, list[Task]] = {}
        now = self.sim.now
        for t in self.graph.roots():
            did = t.meta.get("dag")
            if did is None:
                # Tasks outside any instance (hand-built graphs) keep
                # the closed-system t=0 release.
                t.mark_ready(now)
                self.dispatch(t)
            else:
                roots_by_dag.setdefault(did, []).append(t)
        for inst in plan.instances:
            self.sim.schedule_at(
                inst.release, self._release_instance, inst,
                roots_by_dag.get(inst.index, []),
            )

    def _release_instance(self, inst, roots: list[Task]) -> None:
        now = self.sim.now
        self.metrics.dags_arrived += 1
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "dag_arrived", now,
                dag=inst.index, workload=inst.workload,
                deadline=inst.deadline, tasks=inst.size,
            )
        for t in roots:
            t.mark_ready(now)
            self.dispatch(t)

    def _account_arrival(self, task: Task, now: float) -> None:
        deadline = task.meta.get("deadline")
        if deadline is not None:
            self.metrics.kernel_stats(task.kernel.name).record_slack(
                deadline - now
            )
        did = task.meta.get("dag")
        if did is None:
            return
        assert self._dag_remaining is not None
        remaining = self._dag_remaining.get(did)
        if remaining is None:
            return
        remaining -= 1
        self._dag_remaining[did] = remaining
        if remaining == 0:
            self._on_dag_done(did, now)

    def _on_dag_done(self, did: int, now: float) -> None:
        inst = self.arrivals.instances[did]
        m = self.metrics
        m.dags_completed += 1
        if inst.deadline is None:
            return
        tardiness = now - inst.deadline
        if tardiness <= 0:
            return
        m.deadline_misses += 1
        m.total_tardiness += tardiness
        if tardiness > m.max_tardiness:
            m.max_tardiness = tardiness
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "deadline_missed", now,
                dag=did, workload=inst.workload,
                deadline=inst.deadline, tardiness=tardiness,
            )

    # ------------------------------------------------------------------
    # Dispatch and completion plumbing
    # ------------------------------------------------------------------
    def dispatch(self, task: Task) -> None:
        """Ask the scheduler for a placement and enqueue the task."""
        placement = self.scheduler.place(task)
        task.placement = placement
        core = placement.home_core
        if core is not None and not core.online:
            core = None  # hot-unplugged since the scheduler chose it
        if core is None:
            # Any cluster of the chosen core *type* is eligible (on the
            # TX2 there is exactly one; per-core-DVFS platforms have
            # several equivalent single-core clusters).  Offline cores
            # are skipped; with no faults injected the candidate list —
            # and hence the RNG draw — is unchanged.
            cores = [
                c
                for c in self.platform.cores_of_type(placement.core_type_name)
                if c.online
            ]
            if not cores:
                cores = self.platform.cores_of_type(placement.core_type_name)
            core = cores[int(self.place_rng.integers(len(cores)))]
        queue = self._queues[core.slot]
        if self._deadline_order:
            queue.push_by_deadline(task)
        else:
            queue.push(task)
        obs = self.sim.obs
        if obs.active:
            obs.emit(
                "task_dispatched", self.sim.now,
                task=task.tid, core=core.core_id,
            )
        workers = self._workers
        workers[core.slot].wake()
        # Idle same-scope workers may steal it immediately.
        for other in self.scheduler.steal_candidates(core):
            if not other.busy:
                workers[other.slot].wake()

    def _on_partition_done(self, activity: Activity) -> None:
        part = activity.payload
        assert isinstance(part, TaskPartition)
        task = part.task
        elapsed = self.sim.now - activity.started_at
        if elapsed > task.exec_time:
            task.exec_time = elapsed
        task.partitions_remaining -= 1
        if task.partitions_remaining < 0:
            raise SchedulingError(f"partition underflow on task {task.tid}")
        if task.partitions_remaining == 0:
            self._on_task_done(task)
        # The freed core looks for new work regardless.
        self._workers[activity.core.slot].wake()

    def _on_task_done(self, task: Task) -> None:
        now = self.sim.now
        task.mark_done(now)
        self._tasks_done += 1
        placement = task.placement
        key = "?"
        if placement is not None:
            key = f"{placement.core_type_name}x{task.partitions_total}"
        wait = task.start_time - task.ready_time
        self.metrics.kernel_stats(task.kernel.name).record(
            task.duration, key, wait=wait
        )
        self.metrics.tasks_executed += 1
        if self._dag_remaining is not None:
            self._account_arrival(task, now)
        self.scheduler.on_task_complete(task)
        obs = self.sim.obs
        if obs.active:
            obs.emit("task_done", now, task=task.tid, kernel=task.kernel.name)
        assert self.graph is not None
        for ready in self.graph.release_dependents(task, now):
            self.dispatch(ready)
        if self._tasks_done == len(self.graph):
            self._finish(now)

    def _finish(self, now: float) -> None:
        """Snapshot metrics at the moment the last task completes."""
        self.sensor.finalize(now)
        self.scheduler.on_workload_complete()
        self.metrics.makespan = now
        self.metrics.cpu_energy = self.sensor.energy("cpu")
        self.metrics.mem_energy = self.sensor.energy("mem")
        acc = self.engine.accountant
        acc.finalize(now)
        self.metrics.cpu_energy_exact = acc.energy("cpu")
        self.metrics.mem_energy_exact = acc.energy("mem")
        self.metrics.cluster_freq_transitions = sum(
            ctl.transitions for ctl in self.cluster_dvfs.values()
        )
        self.metrics.memory_freq_transitions = self.memory_dvfs.transitions
        if self.injector is not None:
            self.metrics.extras["faults"] = self.injector.summary()
