"""Per-core work queues.

Owners pop from the front (FIFO among dispatched tasks); thieves steal
from the back, the classic work-stealing discipline.  Partitions of a
starting moldable task are pushed to the *front* of sibling queues so
intra-task parallelism is not delayed behind queued whole tasks.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Union

from repro.runtime.task import Task, TaskPartition

QueueItem = Union[Task, TaskPartition]

_NO_DEADLINE = float("inf")


def _deadline_of(item: QueueItem) -> float:
    """EDF sort key: a task's absolute deadline, +inf when absent."""
    meta = getattr(item, "meta", None)
    if meta is None:
        return _NO_DEADLINE
    return meta.get("deadline", _NO_DEADLINE)


class QueuedTotal:
    """Shared count of queued items across a group of queues.

    Workers consult it to skip fetch events and steal scans that are
    guaranteed to come up empty (nothing queued anywhere).
    """

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0


class WorkQueue:
    """Double-ended work queue bound to one core."""

    def __init__(self, core_id: int, total: Optional[QueuedTotal] = None) -> None:
        self.core_id = core_id
        self._q: deque[QueueItem] = deque()
        self.pushes = 0
        self.steals_suffered = 0
        #: Shared occupancy counter (one per executor); a private one is
        #: used when the queue stands alone (tests).
        self.total = total if total is not None else QueuedTotal()

    def __len__(self) -> int:
        return len(self._q)

    def push(self, item: QueueItem) -> None:
        """Dispatch a task to this queue (back)."""
        self._q.append(item)
        self.pushes += 1
        self.total.n += 1

    def push_front(self, item: QueueItem) -> None:
        """Priority insert (sibling partitions of a started task)."""
        self._q.appendleft(item)
        self.pushes += 1
        self.total.n += 1

    def push_by_deadline(self, item: QueueItem) -> None:
        """Dispatch keeping the queue sorted by absolute task deadline
        (EDF discipline): earliest deadline at the front, FIFO among
        equals, deadline-less items (and partitions) at the back.  The
        owner's front pop then serves the most urgent task first."""
        deadline = _deadline_of(item)
        q = self._q
        if not q or deadline >= _deadline_of(q[-1]):
            q.append(item)
        else:
            idx = len(q) - 1
            while idx > 0 and deadline < _deadline_of(q[idx - 1]):
                idx -= 1
            q.insert(idx, item)
        self.pushes += 1
        self.total.n += 1

    def pop_own(self) -> Optional[QueueItem]:
        """Owner's pop (front)."""
        q = self._q
        if not q:
            return None
        self.total.n -= 1
        return q.popleft()

    def pop_steal(self) -> Optional[QueueItem]:
        """Thief's pop (back)."""
        if not self._q:
            return None
        self.steals_suffered += 1
        self.total.n -= 1
        return self._q.pop()

    def peek_types(self) -> list[str]:
        """Kernel names currently queued (used by task coarsening)."""
        return [item.kernel.name for item in self._q]

    def remove(self, item: QueueItem) -> bool:
        """Remove a specific item (task coarsening pulls same-kernel
        tasks out of sibling queues).  Returns True if found."""
        try:
            self._q.remove(item)
            self.total.n -= 1
            return True
        except ValueError:
            return False
