"""Fault injectors: wrap live components without touching happy paths.

Each injector intercepts one seam the simulator already exposes —
the sensor's ``read_fn``, a DVFS controller's ``request``, a core's
``online`` flag, the scheduler's model suite — so fault-free runs
execute *exactly* the original code (the :class:`FaultInjector` is not
even constructed for an empty campaign, which is what makes zero-fault
runs bit-identical to the baseline).

All randomness comes from per-fault streams derived from the campaign
seed (:meth:`repro.faults.spec.FaultCampaign.rng_for`), so a campaign
replays bit-identically and the draws of one fault never depend on the
presence of another.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping, Optional

import numpy as np

from repro.errors import FrequencyError
from repro.faults.spec import (
    CORE_KINDS,
    DVFS_KINDS,
    MODEL_KINDS,
    SENSOR_KINDS,
    FaultCampaign,
    FaultSpec,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.hw.core import Core
    from repro.hw.dvfs import DvfsController
    from repro.runtime.executor import Executor
    from repro.sim.engine import Simulator

#: Hot-(un)plug events run before same-time completions and DVFS
#: applies so the toggled state is visible to everything at that time.
PLUG_PRIORITY = -20


class SensorTap:
    """Wraps a :class:`~repro.hw.sensor.PowerSensor`'s ``read_fn``.

    Active faults transform the true reading in campaign order:
    dropout returns ``None`` (the sensor counts it), stuck replays the
    last pre-fault reading, saturate clamps, bias applies gain+offset.
    """

    def __init__(
        self,
        sim: "Simulator",
        read_fn: Callable[[], Optional[Mapping[str, float]]],
        faults: list[tuple[FaultSpec, np.random.Generator]],
    ) -> None:
        self.sim = sim
        self._read = read_fn
        self.faults = faults
        #: Last reading delivered while healthy (stuck-at source).
        self._last: Optional[dict[str, float]] = None
        #: Per-fault held reading for active stuck windows.
        self._held: dict[int, dict[str, float]] = {}

    def __call__(self) -> Optional[dict[str, float]]:
        now = self.sim.now
        raw = self._read()
        powers = dict(raw) if raw is not None else None
        for i, (spec, rng) in enumerate(self.faults):
            if not spec.active(now):
                self._held.pop(i, None)
                continue
            if spec.kind == "sensor-dropout":
                if rng.random() < spec.magnitude:
                    return None
            elif powers is None:
                continue
            elif spec.kind == "sensor-stuck":
                held = self._held.get(i)
                if held is None:
                    held = self._held[i] = dict(self._last or powers)
                powers = dict(held)
            elif spec.kind == "sensor-saturate":
                powers = {r: min(p, spec.magnitude) for r, p in powers.items()}
            elif spec.kind == "sensor-bias":
                offset = float(spec.params_dict().get("offset", 0.0))
                powers = {
                    r: p * spec.magnitude + offset for r, p in powers.items()
                }
        stuck_active = any(
            s.kind == "sensor-stuck" and s.active(now) for s, _ in self.faults
        )
        if powers is not None and not stuck_active:
            self._last = dict(powers)
        return powers


class DvfsTap:
    """Intercepts one controller's ``request`` (actuator faults).

    Installed by assigning ``controller.request = tap.request`` — the
    instance attribute shadows the class method, so uninstrumented
    controllers are untouched.
    """

    def __init__(
        self,
        sim: "Simulator",
        controller: "DvfsController",
        faults: list[tuple[FaultSpec, np.random.Generator]],
    ) -> None:
        self.sim = sim
        self.ctl = controller
        self.faults = faults
        self._orig_request = controller.request
        self.ignored = 0
        self.errors = 0
        self.jittered = 0
        controller.request = self.request  # type: ignore[method-assign]

    def request(self, f_ghz: float) -> float:
        now = self.sim.now
        latency_scale = 1.0
        for spec, rng in self.faults:
            if not spec.active(now):
                continue
            if spec.kind == "dvfs-stuck":
                self.ctl.requests += 1
                self.ignored += 1
                return self.ctl.domain.freq
            if spec.kind == "dvfs-ignore":
                if rng.random() < spec.magnitude:
                    self.ctl.requests += 1
                    self.ignored += 1
                    return self.ctl.domain.freq
            elif spec.kind == "dvfs-error":
                if rng.random() < spec.magnitude:
                    self.errors += 1
                    err = FrequencyError(
                        f"{self.ctl.name}: transient request failure "
                        f"(injected {spec.label()})"
                    )
                    err.transient = True
                    raise err
            elif spec.kind == "dvfs-jitter":
                latency_scale *= 1.0 + spec.magnitude * float(rng.random())
                self.jittered += 1
            elif spec.kind == "core-cap":
                f_ghz = min(f_ghz, spec.magnitude)
        if latency_scale == 1.0:
            return self._orig_request(f_ghz)
        saved = self.ctl.latency
        self.ctl.latency = saved * latency_scale
        try:
            return self._orig_request(f_ghz)
        finally:
            self.ctl.latency = saved


class CoreFaultInjector:
    """Schedules hot-unplug / replug events for one core.

    Unplug uses grace semantics: a running activity finishes (the
    completion wakes the worker, which sees ``online == False`` and
    sleeps), queued work is drained to online cores, and the offline
    core stops leaking (the power model skips it).
    """

    def __init__(self, executor: "Executor", core: "Core", spec: FaultSpec) -> None:
        self.ex = executor
        self.core = core
        self.spec = spec
        self.unplugs = 0

    def arm(self) -> None:
        sim = self.ex.sim
        sim.schedule(
            max(0.0, self.spec.onset - sim.now), self._unplug,
            priority=PLUG_PRIORITY,
        )
        if self.spec.duration > 0:
            sim.schedule(
                max(0.0, self.spec.end - sim.now), self._replug,
                priority=PLUG_PRIORITY,
            )

    def _unplug(self) -> None:
        if not self.core.online:
            return
        self.core.online = False
        self.unplugs += 1
        obs = self.ex.sim.obs
        if obs.active:
            # The legacy "core-unplug" trace record comes out of the bus
            # via the tracer bridge (repro.obs.exporters).
            obs.emit(
                "core_unplugged", self.ex.sim.now, core=self.core.core_id
            )
        self._drain_queue()

    def _replug(self) -> None:
        if self.core.online:
            return
        self.core.online = True
        obs = self.ex.sim.obs
        if obs.active:
            obs.emit(
                "core_replugged", self.ex.sim.now, core=self.core.core_id
            )
        self.ex.workers[self.core.core_id].wake()

    def _drain_queue(self) -> None:
        """Move everything queued on the offline core to online cores.

        Partitions stay in-cluster (they share the task's frequency
        decision); whole tasks go to the least-loaded online core of
        the same type.  Ties break on core id — deterministic.
        """
        from repro.runtime.task import TaskPartition

        queue = self.ex.queues[self.core.core_id]
        while True:
            item = queue.pop_own()
            if item is None:
                return
            if isinstance(item, TaskPartition):
                candidates = [
                    c for c in self.core.cluster.cores
                    if c.online and c is not self.core
                ]
            else:
                candidates = [
                    c
                    for c in self.ex.platform.cores_of_type(
                        self.core.core_type.name
                    )
                    if c.online and c is not self.core
                ]
            if not candidates:
                # Validation guarantees one online core per cluster, but
                # be safe: requeue locally; the replug wake will run it.
                queue.push(item)
                return
            candidates.sort(
                key=lambda c: (len(self.ex.queues[c.core_id]), c.core_id)
            )
            dest = candidates[0]
            if isinstance(item, TaskPartition):
                self.ex.queues[dest.core_id].push_front(item)
            else:
                self.ex.queues[dest.core_id].push(item)
            self.ex.workers[dest.core_id].wake()


class PerturbedSuite:
    """Model-misprediction proxy around a :class:`ModelSuite`.

    Suites are memoised and shared across runs (see
    ``repro.sweep.engine``), so the proxy never mutates the wrapped
    suite: it scales the *time* grid of each freshly built prediction
    table by ``exp(magnitude * N(0, 1))`` while a ``model-bias`` fault
    is active.  Everything else delegates.
    """

    def __init__(
        self,
        suite,
        sim: "Simulator",
        faults: list[tuple[FaultSpec, np.random.Generator]],
    ) -> None:
        self._suite = suite
        self._sim = sim
        self._faults = faults

    def __getattr__(self, name: str):
        return getattr(self._suite, name)

    def build_table(self, *args, **kwargs):
        table = self._suite.build_table(*args, **kwargs)
        now = self._sim.now
        for spec, rng in self._faults:
            if spec.active(now):
                factor = float(np.exp(spec.magnitude * rng.standard_normal()))
                table.time = table.time * factor
                table._energy_memo.clear()  # time changed under the memo
        return table

    def build_tables(self, params, grids):
        """Batched table build (see :meth:`ModelSuite.build_tables`).

        Must be intercepted explicitly: ``__getattr__`` would delegate
        straight to the clean suite and silently skip the per-table
        fault scaling.  Routes every table through this proxy's
        :meth:`build_table` so each one draws its own perturbation, in
        the same per-config order as the unbatched path.
        """
        out = {}
        for key, (mb, time_ref) in params.items():
            cluster, n_cores = key
            f_c_grid, f_m_grid = grids[cluster]
            out[key] = self.build_table(
                cluster, n_cores, mb, time_ref, f_c_grid, f_m_grid
            )
        return out


class FaultInjector:
    """Installs a whole campaign onto a freshly built executor."""

    def __init__(self, campaign: FaultCampaign, executor: "Executor") -> None:
        campaign.validate_for(executor.platform)
        self.campaign = campaign
        self.ex = executor
        self.sensor_tap: Optional[SensorTap] = None
        self.dvfs_taps: dict[str, DvfsTap] = {}
        self.core_injectors: list[CoreFaultInjector] = []
        self.model_proxy: Optional[PerturbedSuite] = None

    def install(self) -> None:
        sensor_faults = [
            (f, self.campaign.rng_for(i))
            for i, f in self.campaign.by_kinds(SENSOR_KINDS)
        ]
        if sensor_faults:
            self.sensor_tap = SensorTap(
                self.ex.sim, self.ex.sensor.read_fn, sensor_faults
            )
            self.ex.sensor.read_fn = self.sensor_tap

        dvfs_faults = self.campaign.by_kinds(DVFS_KINDS)
        if dvfs_faults:
            rngs = {i: self.campaign.rng_for(i) for i, _ in dvfs_faults}
            controllers = {
                ctl.name: ctl
                for ctl in [
                    *self.ex.cluster_dvfs.values(), self.ex.memory_dvfs,
                ]
            }
            for name, ctl in controllers.items():
                matching = [
                    (f, rngs[i]) for i, f in dvfs_faults if f.matches(name)
                ]
                if matching:
                    self.dvfs_taps[name] = DvfsTap(self.ex.sim, ctl, matching)
            for i, f in dvfs_faults:
                if f.target != "*" and f.target not in controllers:
                    from repro.errors import FaultError

                    raise FaultError(
                        f"{f.label()}: no DVFS domain named {f.target!r} "
                        f"(have {sorted(controllers)})"
                    )
            # core-cap forces the frequency down at onset, not just on
            # the next request (thermal throttling is immediate).
            for i, f in dvfs_faults:
                if f.kind != "core-cap":
                    continue
                for name, ctl in controllers.items():
                    if f.matches(name):
                        self.ex.sim.schedule(
                            max(0.0, f.onset - self.ex.sim.now),
                            self._force_cap, ctl, f.magnitude,
                            priority=PLUG_PRIORITY,
                        )

        cores_by_id = {c.core_id: c for c in self.ex.platform.cores}
        for i, f in self.campaign.by_kinds(CORE_KINDS):
            injector = CoreFaultInjector(self.ex, cores_by_id[int(f.target)], f)
            injector.arm()
            self.core_injectors.append(injector)

        model_faults = [
            (f, self.campaign.rng_for(i))
            for i, f in self.campaign.by_kinds(MODEL_KINDS)
        ]
        if model_faults:
            suite = getattr(self.ex.scheduler, "suite", None)
            if suite is not None:
                self.model_proxy = PerturbedSuite(
                    suite, self.ex.sim, model_faults
                )
                self.ex.scheduler.suite = self.model_proxy

    def _force_cap(self, ctl: "DvfsController", cap_ghz: float) -> None:
        if ctl.target_freq > cap_ghz:
            ctl.request(cap_ghz)  # goes through the tap, which clamps

    def summary(self) -> dict:
        """Injection counters for ``RunMetrics.extras`` (JSON-safe)."""
        out: dict = {
            "campaign": self.campaign.name or "campaign",
            "campaign_hash": self.campaign.campaign_hash[:12],
            "faults": len(self.campaign),
        }
        if self.sensor_tap is not None:
            out["sensor_dropped"] = self.ex.sensor.dropped
        if self.dvfs_taps:
            out["dvfs_ignored"] = sum(t.ignored for t in self.dvfs_taps.values())
            out["dvfs_errors"] = sum(t.errors for t in self.dvfs_taps.values())
            out["dvfs_jittered"] = sum(
                t.jittered for t in self.dvfs_taps.values()
            )
        if self.core_injectors:
            out["core_unplugs"] = sum(c.unplugs for c in self.core_injectors)
        return out
