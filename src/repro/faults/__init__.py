"""Deterministic fault injection and degradation analysis.

See :mod:`repro.faults.spec` for the fault vocabulary,
:mod:`repro.faults.inject` for how faults attach to a live executor,
:mod:`repro.faults.campaigns` for the built-in single-fault campaigns
and :mod:`repro.faults.report` for baseline-relative degradation
reports.  Graceful *reaction* to faults lives with the scheduler
(:mod:`repro.core.health`).
"""

from repro.faults.campaigns import builtin_campaigns
from repro.faults.inject import (
    CoreFaultInjector,
    DvfsTap,
    FaultInjector,
    PerturbedSuite,
    SensorTap,
)
from repro.faults.report import DegradationReport, FaultModelResult, worst_case
from repro.faults.spec import (
    ALL_KINDS,
    FAULT_SCHEMA_VERSION,
    FaultCampaign,
    FaultSpec,
)

__all__ = [
    "ALL_KINDS",
    "FAULT_SCHEMA_VERSION",
    "FaultCampaign",
    "FaultSpec",
    "FaultInjector",
    "SensorTap",
    "DvfsTap",
    "CoreFaultInjector",
    "PerturbedSuite",
    "builtin_campaigns",
    "DegradationReport",
    "FaultModelResult",
    "worst_case",
]
