"""Declarative fault specifications.

A :class:`FaultSpec` names one perturbation of the simulated platform
*as data* — kind, target, onset, duration, magnitude — in the same
frozen/canonical-JSON style as :mod:`repro.sweep.spec`, so campaigns
are content-hashable and compose with the sweep result cache: a job
spec carrying a campaign hashes differently from the fault-free job,
and identical campaigns replay bit-identically.

Built-in fault kinds
--------------------

Sensor (target: ``"*"`` — the one INA3221 stand-in):

- ``sensor-dropout`` — each sample is lost with probability
  ``magnitude`` (energy for that interval is never accumulated);
- ``sensor-stuck`` — reads return the last pre-fault value for the
  whole window (stuck-at-last-value);
- ``sensor-saturate`` — rail readings clamp at ``magnitude`` watts;
- ``sensor-bias`` — readings scale by ``magnitude`` (gain) plus
  ``params["offset"]`` watts.

DVFS actuator (target: controller name — ``"cpu0"``, ``"cpu1"``,
``"emc"`` — or ``"*"``):

- ``dvfs-ignore`` — each request is silently dropped with probability
  ``magnitude``;
- ``dvfs-stuck`` — the domain holds its current OPP; every request in
  the window is ignored;
- ``dvfs-jitter`` — transition latency stretches by a random factor in
  ``[1, 1 + magnitude]`` per request;
- ``dvfs-error`` — each request raises a transient
  :class:`~repro.errors.FrequencyError` with probability ``magnitude``.

Cores (target: core id as a string for unplug, controller name for
capping):

- ``core-unplug`` — the core goes offline for the window (running work
  finishes; queued work is re-dispatched; no leakage while offline);
- ``core-cap`` — thermal throttle: cluster requests are capped at
  ``magnitude`` GHz and the current frequency is forced down at onset.

Model (target: ``"*"``):

- ``model-bias`` — every prediction table built during the window has
  its time grid scaled by ``exp(magnitude * N(0,1))`` (multiplicative
  misprediction), stressing selection and the drift monitor.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.errors import FaultError
from repro.sweep.spec import freeze, thaw

#: Bump when fault semantics change in a way that invalidates cached
#: campaign results (folded into the campaign hash).
FAULT_SCHEMA_VERSION = 1

SENSOR_KINDS = ("sensor-dropout", "sensor-stuck", "sensor-saturate", "sensor-bias")
DVFS_KINDS = ("dvfs-ignore", "dvfs-stuck", "dvfs-jitter", "dvfs-error", "core-cap")
CORE_KINDS = ("core-unplug",)
MODEL_KINDS = ("model-bias",)
ALL_KINDS = SENSOR_KINDS + DVFS_KINDS + CORE_KINDS + MODEL_KINDS


@dataclass(frozen=True)
class FaultSpec:
    """One fault: what breaks, where, when, and how hard."""

    kind: str
    target: str = "*"
    #: Simulated time the fault switches on (seconds).
    onset: float = 0.0
    #: Window length; ``0`` or negative means "until the end of run".
    duration: float = 0.0
    #: Kind-specific severity (probability, watts, GHz, or sigma).
    magnitude: float = 0.0
    #: Extra kind-specific parameters (canonicalised like sweep kwargs).
    params: Any = ()

    def __post_init__(self) -> None:
        if self.kind not in ALL_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r} (known: {list(ALL_KINDS)})"
            )
        if self.onset < 0:
            raise FaultError("fault onset must be >= 0")
        object.__setattr__(self, "onset", float(self.onset))
        object.__setattr__(self, "duration", float(self.duration))
        object.__setattr__(self, "magnitude", float(self.magnitude))
        object.__setattr__(self, "params", freeze(self.params or {}))

    def params_dict(self) -> dict:
        out = thaw(self.params)
        return out if isinstance(out, dict) else {}

    def active(self, now: float) -> bool:
        """Whether the fault window covers simulated time ``now``."""
        if now < self.onset:
            return False
        return self.duration <= 0 or now < self.onset + self.duration

    @property
    def end(self) -> float:
        """Window end (``inf`` for open-ended faults)."""
        return self.onset + self.duration if self.duration > 0 else float("inf")

    def matches(self, target: str) -> bool:
        return self.target == "*" or self.target == target

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "onset": self.onset,
            "duration": self.duration,
            "magnitude": self.magnitude,
            "params": self.params_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def label(self) -> str:
        tgt = "" if self.target == "*" else f"@{self.target}"
        return f"{self.kind}{tgt}[{self.onset:g}s+{self.duration:g}s]"


@dataclass(frozen=True)
class FaultCampaign:
    """A seeded set of faults applied to one run.

    Every fault draws from its own RNG stream derived from the campaign
    seed and the fault's position, so identical campaigns replay
    bit-identically and removing one fault never perturbs the draws of
    another.
    """

    seed: int = 0
    faults: Sequence[FaultSpec] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for f in self.faults:
            if not isinstance(f, FaultSpec):
                raise FaultError(f"campaign faults must be FaultSpec, got {f!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.faults)

    @property
    def empty(self) -> bool:
        return not self.faults

    def rng_for(self, index: int) -> np.random.Generator:
        """Independent generator for the ``index``-th fault."""
        seq = np.random.SeedSequence(entropy=int(self.seed), spawn_key=(index,))
        return np.random.default_rng(seq)

    def by_kinds(self, kinds: Sequence[str]) -> list[tuple[int, FaultSpec]]:
        """(index, fault) pairs whose kind is in ``kinds``, in order."""
        return [(i, f) for i, f in enumerate(self.faults) if f.kind in kinds]

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "name": self.name,
            "faults": [f.to_dict() for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultCampaign":
        return cls(
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
            faults=tuple(
                FaultSpec.from_dict(f) for f in data.get("faults", ())
            ),
        )

    def canonical_json(self) -> str:
        payload = dict(self.to_dict(), fault_schema_version=FAULT_SCHEMA_VERSION)
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def campaign_hash(self) -> str:
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    def describe(self) -> str:
        label = self.name or "campaign"
        return f"{label}: {len(self.faults)} fault(s), seed {self.seed}"

    # ------------------------------------------------------------------
    # Static validation (run before injection)
    # ------------------------------------------------------------------
    def validate_for(self, platform) -> None:
        """Reject campaigns the runtime cannot gracefully absorb:
        overlapping hot-unplugs must leave at least one online core in
        every cluster (otherwise queued work strands and the run
        deadlocks — that is a crash, not degradation)."""
        unplugs = [f for f in self.faults if f.kind == "core-unplug"]
        for f in unplugs:
            try:
                core_id = int(f.target)
            except ValueError:
                raise FaultError(
                    f"core-unplug target must be a core id, got {f.target!r}"
                ) from None
            if not 0 <= core_id < platform.n_cores:
                raise FaultError(
                    f"core-unplug target {core_id} out of range "
                    f"(platform has {platform.n_cores} cores)"
                )
        for cl in platform.clusters:
            ids = {c.core_id for c in cl.cores}
            covering = [f for f in unplugs if int(f.target) in ids]
            if len({int(f.target) for f in covering}) < len(ids):
                continue
            # Every core targeted at least once: reject if any instant
            # has all of them offline simultaneously.
            edges = sorted({f.onset for f in covering})
            for t in edges:
                offline = {
                    int(f.target) for f in covering if f.onset <= t < f.end
                }
                if offline >= ids:
                    raise FaultError(
                        f"campaign unplugs every core of cluster "
                        f"{cl.cluster_id} at t={t:g}s; at least one core "
                        f"per cluster must stay online"
                    )
