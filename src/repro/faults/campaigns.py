"""Built-in single-fault campaigns for the ``repro faults`` CLI.

Each campaign exercises one fault model at a severity that forces the
degradation machinery to react without making the run unwinnable.
Onset and duration scale with the expected fault-free makespan so the
same campaigns stress both a 50 ms kernel burst and a multi-second
workload.
"""

from __future__ import annotations

from repro.faults.spec import FaultCampaign, FaultSpec


def builtin_campaigns(
    makespan_s: float, seed: int = 0
) -> dict[str, FaultCampaign]:
    """One campaign per built-in fault model, scaled to ``makespan_s``.

    The window opens at 10% of the fault-free makespan (after sampling
    has warmed up) and covers half the run — long enough that a
    scheduler which cannot degrade would visibly suffer.
    """
    onset = 0.1 * makespan_s
    span = 0.5 * makespan_s

    def one(spec: FaultSpec, name: str) -> FaultCampaign:
        return FaultCampaign(seed=seed, faults=(spec,), name=name)

    return {
        "sensor-dropout": one(
            FaultSpec("sensor-dropout", onset=onset, duration=span,
                      magnitude=0.8),
            "sensor-dropout",
        ),
        "sensor-stuck": one(
            FaultSpec("sensor-stuck", onset=onset, duration=span),
            "sensor-stuck",
        ),
        "dvfs-stuck": one(
            FaultSpec("dvfs-stuck", target="*", onset=onset, duration=span),
            "dvfs-stuck",
        ),
        "dvfs-ignore": one(
            FaultSpec("dvfs-ignore", target="*", onset=onset, duration=span,
                      magnitude=0.5),
            "dvfs-ignore",
        ),
        "core-unplug": one(
            # Core 0 (the 2-core Denver cluster on the TX2) is where an
            # unplug hurts: half the cluster's capacity disappears.
            FaultSpec("core-unplug", target="0", onset=onset, duration=span),
            "core-unplug",
        ),
        "model-bias": one(
            # Open-ended: every table built after onset is mispredicted
            # by a lognormal factor with sigma 0.8 — enough to trip the
            # drift monitor on most kernels.
            FaultSpec("model-bias", onset=0.0, magnitude=0.8),
            "model-bias",
        ),
    }
