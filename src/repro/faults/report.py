"""Degradation reports: faulted runs against the fault-free baseline.

The report quantifies what each fault model *cost* — energy, makespan
and decision churn deltas relative to the same (workload, scheduler,
seed) run without faults — plus how the degradation machinery reacted
(fallback count, time and energy spent degraded).  Serialisation is
canonical (sorted keys, fixed separators) so identical campaigns
produce byte-identical report JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from repro.runtime.metrics import RunMetrics


def _ratio(value: float, base: float) -> float:
    return value / base if base > 0 else 0.0


@dataclass
class FaultModelResult:
    """One campaign's outcome vs the baseline."""

    name: str
    campaign_hash: str
    metrics: RunMetrics
    baseline: RunMetrics

    @property
    def energy_ratio(self) -> float:
        return _ratio(self.metrics.total_energy, self.baseline.total_energy)

    @property
    def makespan_ratio(self) -> float:
        return _ratio(self.metrics.makespan, self.baseline.makespan)

    @property
    def decision_churn(self) -> int:
        """Extra DVFS transitions vs the baseline (decision churn)."""
        faulted = (
            self.metrics.cluster_freq_transitions
            + self.metrics.memory_freq_transitions
        )
        base = (
            self.baseline.cluster_freq_transitions
            + self.baseline.memory_freq_transitions
        )
        return faulted - base

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "campaign_hash": self.campaign_hash,
            "energy_ratio": self.energy_ratio,
            "makespan_ratio": self.makespan_ratio,
            "decision_churn": self.decision_churn,
            "fallback_count": self.metrics.fallback_count,
            "degraded_time": self.metrics.degraded_time,
            "degraded_energy": self.metrics.degraded_energy,
            "metrics": self.metrics.to_dict(),
        }

    def summary_line(self) -> str:
        return (
            f"{self.name:>16s} | E {self.energy_ratio:6.3f}x | "
            f"T {self.makespan_ratio:6.3f}x | "
            f"churn {self.decision_churn:+4d} | "
            f"fallbacks {self.metrics.fallback_count:3d} | "
            f"degraded {self.metrics.degraded_time * 1e3:8.2f} ms"
        )


@dataclass
class DegradationReport:
    """All fault models of one ``repro faults`` invocation."""

    workload: str
    scheduler: str
    baseline: RunMetrics
    results: list[FaultModelResult] = field(default_factory=list)

    def add(
        self, name: str, campaign_hash: str, metrics: RunMetrics
    ) -> FaultModelResult:
        res = FaultModelResult(name, campaign_hash, metrics, self.baseline)
        self.results.append(res)
        return res

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "scheduler": self.scheduler,
            "baseline": self.baseline.to_dict(),
            "results": [r.to_dict() for r in self.results],
        }

    def canonical_json(self) -> str:
        """Deterministic serialisation (same campaign -> same bytes)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        lines = [
            f"degradation report: {self.workload} / {self.scheduler}",
            f"baseline: {self.baseline.summary()}",
            "",
        ]
        lines.extend(r.summary_line() for r in self.results)
        return "\n".join(lines)


def worst_case(results: Sequence[FaultModelResult]) -> FaultModelResult | None:
    """The fault model with the largest energy blow-up."""
    return max(results, key=lambda r: r.energy_ratio, default=None)
