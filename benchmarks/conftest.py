"""Shared fixtures for the benchmark suite.

Each bench regenerates one paper artefact, asserts its qualitative
shape, saves the rendered table under ``benchmarks/results/`` and
prints it (visible with ``pytest -s`` or on failure).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.runner import BenchConfig
from repro.models.training import profile_and_fit

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    """CI-sized settings: scale 1, 2 repetitions (the paper uses 10)."""
    cfg = BenchConfig(scale=1.0, repetitions=2)
    cfg.suite()  # warm the model-suite cache once for the whole session
    return cfg


def emit(result, results_dir: Path) -> None:
    """Persist and print an ExperimentResult."""
    path = result.save(results_dir)
    print(f"\n[{result.name}] saved to {path}\n{result.text}")
    if result.summary:
        for k, v in result.summary.items():
            print(f"  {k} = {v:.4g}")
