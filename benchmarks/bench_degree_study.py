"""Section 4.3.3 — MPR degree study (overfitting claim)."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import degree


def test_degree_study(benchmark, results_dir):
    result = benchmark.pedantic(degree.run, rounds=1, iterations=1)
    emit(result, results_dir)
    s = result.summary
    # Degree 2 is clearly better than degree 1 on held-out kernels...
    assert s["deg2_performance"] > s["deg1_performance"] + 0.02
    assert s["deg2_cpu_power"] > s["deg1_cpu_power"] + 0.02
    # ...while degree 3 doubles the parameters without a matching gain
    # (the paper's overfitting observation).
    assert s["deg3_performance"] < s["deg2_performance"] + 0.01
    rows = {r["degree"]: r for r in result.rows}
    assert rows[3]["params_per_config"] > 1.5 * rows[2]["params_per_config"]
