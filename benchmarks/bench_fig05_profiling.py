"""Figure 5 — synthetic-benchmark power profiles on A57 x 2."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import fig5


def test_fig5_profiling(benchmark, results_dir):
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    emit(result, results_dir)
    # Observation (a): CPU power is (nearly) insensitive to f_M —
    # the basis for dropping f_M from Eq. 4.
    assert result.summary["cpu_power_fm_sensitivity"] < 0.10
    rows = result.rows
    # Observation (b): memory power rises with f_M for memory-bound
    # work at fixed f_C.
    high = [r for r in rows if r["level"] == "high-MB" and r["f_c"] == 2.040]
    high.sort(key=lambda r: r["f_m"])
    mem = [r["mem_power_w"] for r in high]
    assert mem == sorted(mem)
    # And compute-heavy kernels draw more CPU power than memory-bound
    # ones at the same setting.
    low = [r for r in rows if r["level"] == "low-MB" and r["f_c"] == 2.040]
    assert min(r["cpu_power_w"] for r in low) > max(r["cpu_power_w"] for r in high)
