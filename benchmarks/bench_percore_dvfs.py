"""Extension study — per-core DVFS vs the paper's clustered DVFS."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import percore


def test_percore_dvfs(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        percore.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # Moldable execution is a net win on the clustered platform...
    # (ratio = clustered / clustered-nc1 energy; both directions occur
    # per workload, but it must not be catastrophic either way)
    assert 0.8 < s["moldable_benefit"] < 1.4
    # ...and per-core DVFS does not pay for its per-domain overhead
    # here: the clustered design stays within ~±25% and typically wins,
    # the economic argument for clustering ([27] in the paper).
    assert 0.85 < s["percore_vs_clustered_nc1"] < 1.5
    # Every setup completes every workload.
    assert len(result.rows) == 4 * 3
    assert all(r["total_energy_j"] > 0 for r in result.rows)
