"""Section 5.1 — sampling-phase cost falls with kernel invocations.

The (workload x scale) grid is declared as a
:class:`repro.sweep.SweepSpec` — this one exercises the multi-scale
axis — and executed by the sweep engine.
"""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench.experiments import sampling


def test_sec51_grid_is_a_sweep_spec():
    spec = sampling.sweep_spec()
    assert len(spec) == len(sampling.DEFAULT_WORKLOADS) * len(sampling.DEFAULT_SCALES)
    assert spec.scales == sampling.DEFAULT_SCALES
    assert spec.repetitions == 1


def test_sec51_sampling(benchmark, results_dir):
    result = benchmark.pedantic(sampling.run, rounds=1, iterations=1)
    emit(result, results_dir)
    # The sampling share shrinks as workloads scale toward the paper's
    # invocation counts (paper: 0.8% at full size).
    by_wl: dict[str, list[tuple[float, float]]] = {}
    for r in result.rows:
        by_wl.setdefault(r["workload"], []).append(
            (r["scale"], r["fraction_of_task_time"])
        )
    shrinking = 0
    for pts in by_wl.values():
        pts.sort()
        if pts[-1][1] < pts[0][1]:
            shrinking += 1
    assert shrinking >= len(by_wl) - 1
    assert result.summary["largest_scale_avg_fraction"] < 0.25
