"""Portability — the unchanged framework on the ODROID-XU4 model."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import portability


def test_portability(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        portability.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # The paper's ordering carries over to the second platform: JOSS
    # saves the most on average...
    assert s["JOSS_avg_reduction"] >= s["STEER_avg_reduction"] - 0.01
    assert s["JOSS_avg_reduction"] >= s["Aequitas_avg_reduction"]
    assert s["JOSS_avg_reduction"] > 0.15
    # ...and every model-based scheduler beats GRWS on every workload
    # (the A15's power hunger makes core choice decisive on the XU4).
    for row in result.rows:
        assert row["JOSS"] < 1.0
        assert row["STEER"] < 1.0
        assert row["ERASE"] < 1.0
    # On a board without the memory knob JOSS cannot be (meaningfully)
    # worse than STEER anywhere — same search, wider objective.
    for row in result.rows:
        assert row["JOSS"] <= row["STEER"] + 0.03
