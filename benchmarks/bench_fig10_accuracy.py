"""Figure 10 — model prediction accuracy."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import fig10


def test_fig10_accuracy(benchmark, results_dir):
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    emit(result, results_dir)
    s = result.summary
    # Paper bands (mean): performance 97%, CPU power 90%, memory 80%.
    # Our simulated-platform models land at or above these bands; the
    # qualitative ordering performance >= CPU >= memory holds.
    assert s["performance_mean"] > 0.90
    assert s["cpu_power_mean"] > 0.85
    assert s["mem_power_mean"] > 0.70
    assert s["performance_mean"] >= s["cpu_power_mean"] - 0.02
    assert s["cpu_power_mean"] >= s["mem_power_mean"] - 0.02
    for r in result.rows:
        assert r["median"] >= r["mean"] - 0.05  # left-skewed tails, as in Fig 10
