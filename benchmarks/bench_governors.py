"""Kernel-governor baselines vs JOSS (extension study)."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import governors


def test_governors(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        governors.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    by = {(r["workload"], r["scheduler"]): r for r in result.rows}
    workloads = {r["workload"] for r in result.rows}
    # (a) JOSS's energy beats or ties the best governor on average and
    # never loses meaningfully on any workload.
    assert s["joss_energy_vs_best_governor"] < 1.0
    for wl in workloads:
        govs = [
            by[(wl, g)]["energy_norm"]
            for g in ("gov-performance", "gov-ondemand", "gov-powersave")
        ]
        assert by[(wl, "JOSS")]["energy_norm"] <= min(govs) * 1.05
        # powersave's energy comes at a multiple in execution time.
        assert by[(wl, "gov-powersave")]["time_norm"] > 3.0
    # (b) On EDP, MAXP crushes powersave and stays in
    # gov-performance's neighbourhood.
    for wl in workloads:
        assert (
            by[(wl, "JOSS_MAXP")]["edp_norm"]
            < by[(wl, "gov-powersave")]["edp_norm"]
        )
    assert s["joss_maxp_edp_vs_performance"] < 2.0
