"""Figure 1 — motivation: four configuration-selection scenarios."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import fig1


def test_fig1_motivation(benchmark, results_dir):
    result = benchmark.pedantic(fig1.run, rounds=1, iterations=1)
    emit(result, results_dir)
    s = result.summary
    # Counting memory energy changes the chosen config for the better.
    assert s["MM_s2_vs_s1"] >= -0.01
    assert s["MC_s2_vs_s1"] >= 0.0
    # Joint four-knob selection is at least as good as orthogonal.
    assert s["MM_s4_vs_s3"] >= -1e-9
    assert s["MC_s4_vs_s3"] >= 0.0
    by_key = {(r["benchmark"], r["scenario"][0]): r for r in result.rows}
    for bench in ("MM", "MC"):
        e = {k: by_key[(bench, k)]["total_energy_j"] for k in "1234"}
        # Scenario ordering of the paper: joint <= orthogonal <= SotA.
        assert e["4"] <= e["3"] + 1e-12 <= e["1"] + 1e-9
        assert e["2"] <= e["1"] + 1e-12
