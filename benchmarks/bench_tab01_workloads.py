"""Table 1 — evaluated benchmark inventory."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import tab1


def test_tab1_workloads(benchmark, results_dir):
    result = benchmark.pedantic(tab1.run, rounds=1, iterations=1)
    emit(result, results_dir)
    rows = {r["name"]: r for r in result.rows}
    assert len(rows) == 15
    # SparseLU exposes the four paper kernels.
    assert set(rows["slu"]["kernels"]) == {
        "slu.lu0", "slu.fwd", "slu.bdiv", "slu.bmod"
    }
    # The synthetics honour their configured dop.
    for wl in ("mm-256", "mc-4096", "st-512"):
        assert abs(rows[wl]["dop"] - 4.0) < 0.5
    # HD keeps the paper's inverse size/task-count relation.
    assert rows["hd-small"]["tasks"] > rows["hd-big"]["tasks"] > rows["hd-huge"]["tasks"]
