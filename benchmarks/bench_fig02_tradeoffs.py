"""Figure 2 — energy/performance trade-off exploration."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import fig2


def test_fig2_tradeoffs(benchmark, results_dir):
    result = benchmark.pedantic(fig2.run, rounds=1, iterations=1)
    emit(result, results_dir)
    s = result.summary
    # Meaningful speedup headroom exists above the min-energy config
    # (paper: 1.8x for MM, 1.9x for MC) at a real energy premium.
    assert s["MM_max_speedup"] > 1.5
    assert s["MC_max_speedup"] > 1.5
    assert s["MM_max_premium"] > 0.05
    assert s["MC_max_premium"] > 0.05
    # The frontier is monotone: more speedup never costs less energy
    # at the frontier points (per benchmark).
    for bench in ("MM", "MC"):
        pts = [r for r in result.rows if r["benchmark"] == bench and r["kind"] == "frontier"]
        pts.sort(key=lambda r: r["speedup"])
        premiums = [r["energy_premium"] for r in pts]
        assert all(b >= a - 0.02 for a, b in zip(premiums, premiums[1:]))
