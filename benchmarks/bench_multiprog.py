"""Multi-programmed application mixes."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import multiprog


def test_multiprog(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        multiprog.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # JOSS handles conflicting per-application frequency demands best —
    # its averaging coordination is exactly the mechanism under test.
    assert s["JOSS_avg_reduction"] > s["STEER_avg_reduction"]
    assert s["JOSS_avg_reduction"] > s["JOSS_NoMemDVFS_avg_reduction"]
    assert s["JOSS_avg_reduction"] > 0.10
    for row in result.rows:
        assert row["JOSS"] < 1.0  # wins every mix
        assert row["JOSS"] <= min(
            row[x] for x in ("ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS")
        ) + 0.02
