"""Figure 9 — reducing energy under performance constraints.

The (workload x JOSS-variant) grid is declared as a
:class:`repro.sweep.SweepSpec` and executed by the sweep engine.
"""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import fig9


def test_fig9_grid_is_a_sweep_spec(bench_config):
    spec = fig9.sweep_spec(bench_config)
    assert len(spec) == (
        len(fig9.DEFAULT_WORKLOADS) * len(fig9.VARIANTS)
        * bench_config.repetitions
    )
    assert set(spec.schedulers) == set(fig9.VARIANTS)


def test_fig9_constraints(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        fig9.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # Tighter constraints run faster on average...
    assert s["JOSS_1.2x_avg_speedup"] > 1.0
    assert s["JOSS_1.8x_avg_speedup"] >= s["JOSS_1.2x_avg_speedup"] - 0.05
    assert s["JOSS_MAXP_avg_speedup"] >= s["JOSS_1.8x_avg_speedup"] - 0.05
    # ...and cost more energy (paper: +6% / +13% / +32%).
    assert s["JOSS_1.2x_avg_energy_premium"] < s["JOSS_MAXP_avg_energy_premium"]
    assert s["JOSS_MAXP_avg_energy_premium"] > 0.1
    # Memory-bound MC saturates: even MAXP cannot speed it up further
    # than its bandwidth ceiling (paper section 7.2).
    mc = next(r for r in result.rows if r["workload"] == "mc-4096")
    assert mc["JOSS_MAXP_time"] >= mc["JOSS_1.8x_time"] - 0.05
