"""Design-choice ablations: coordination, coarsening, search."""

from __future__ import annotations

import numpy as np
from conftest import emit

from repro.bench.experiments import ablation
from repro.bench.runner import BenchConfig


def test_ablations(benchmark, results_dir):
    cfg = BenchConfig(repetitions=1)
    result = benchmark.pedantic(
        ablation.run, args=(cfg,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # The arithmetic mean is at worst marginally beaten by any other
    # coordination strategy on average (the paper found it best).
    for strat in ("min", "max", "ours", "theirs"):
        assert s[f"coordination_{strat}_avg"] > 0.97
    # Coarsening saves energy on the fine-grained FB workload.
    coarse = {r["variant"]: r for r in result.rows if r["ablation"] == "coarsening"}
    assert coarse["on"]["energy_j"] <= coarse["off"]["energy_j"] * 1.02
    # Steepest descent matches exhaustive end-to-end energy within a
    # few percent at a fraction of the evaluations.
    sel = [r for r in result.rows if r["ablation"] == "selector"]
    for wl in {r["workload"] for r in sel}:
        st = next(r for r in sel if r["workload"] == wl and r["variant"] == "steepest")
        ex = next(r for r in sel if r["workload"] == wl and r["variant"] == "exhaustive")
        assert st["energy_j"] <= ex["energy_j"] * 1.10
        assert st["evaluations"] < ex["evaluations"] * 0.5
