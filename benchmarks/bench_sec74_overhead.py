"""Section 7.4 — steepest descent vs exhaustive search, LUT storage."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import overhead
from repro.models.tables import storage_entries


def test_sec74_overhead(benchmark, results_dir):
    result = benchmark.pedantic(overhead.run, rounds=1, iterations=1)
    emit(result, results_dir)
    s = result.summary
    # Paper: ~70% fewer comparisons, >= 97% of the energy benefit kept.
    assert s["avg_eval_reduction"] > 0.60
    assert s["avg_energy_quality"] > 0.95
    # The paper's storage formula for the TX2 grid.
    assert storage_entries(2, 4, 12, 7) == 3 * 2 * 3 * 12 * 7
    # Larger platforms widen the gap's absolute size.
    assert storage_entries(8, 16, 16, 8) > storage_entries(2, 4, 12, 7)
