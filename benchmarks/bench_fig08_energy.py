"""Figure 8 — total energy across schedulers and benchmarks.

The headline experiment: paper averages vs GRWS are JOSS 40.7%,
JOSS_NoMemDVFS 24.8%, STEER 19.5%, ERASE 16.3%, Aequitas 8.7%.  The
reproduction asserts the *shape*: the ordering of schedulers, JOSS
winning broadly, and memory DVFS delivering extra savings on top of
JOSS_NoMemDVFS, which itself beats STEER (the paper's +5.2% claim).

The run grid is declared as a :class:`repro.sweep.SweepSpec`, so at
paper scale the same grid can be fanned out over worker processes and
re-runs become cache hits (``joss-repro sweep``).
"""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import fig8
from repro.workloads.registry import workload_names


def test_fig8_grid_is_a_sweep_spec(bench_config):
    spec = fig8.sweep_spec(bench_config)
    assert len(spec) == (
        len(workload_names()) * len(fig8.SCHEDULERS) * bench_config.repetitions
    )
    # Content-addressed: the same grid always hashes the same way.
    assert spec.sweep_hash == fig8.sweep_spec(bench_config).sweep_hash


def test_fig8_energy(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        fig8.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # Who wins: JOSS saves the most on average, with the paper's
    # ordering among the rest.
    assert s["JOSS_avg_reduction"] > s["JOSS_NoMemDVFS_avg_reduction"]
    assert s["JOSS_NoMemDVFS_avg_reduction"] > s["STEER_avg_reduction"]
    assert s["STEER_avg_reduction"] > s["Aequitas_avg_reduction"]
    assert s["ERASE_avg_reduction"] > s["Aequitas_avg_reduction"]
    # Magnitudes: meaningful savings, in the band the simulator yields.
    assert s["JOSS_avg_reduction"] > 0.15
    assert s["JOSS_vs_STEER_extra"] > 0.05      # paper: 21.2% extra
    assert s["memory_dvfs_extra"] > 0.02        # the memory-DVFS knob pays
    # JOSS is the best scheduler on a clear majority of workloads.
    wins = sum(
        1
        for r in result.rows
        if r["JOSS"] <= min(r[s_] for s_ in
                            ("ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS"))
        and r["JOSS"] <= 1.0
    )
    assert wins >= len(result.rows) * 0.6
