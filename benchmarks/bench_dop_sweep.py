"""dop sweep — JOSS vs GRWS across the DAG-parallelism spectrum."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import dop


def test_dop_sweep(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        dop.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    s = result.summary
    # JOSS wins across the whole spectrum...
    assert s["worst_ratio"] < 1.0
    # ...and wins biggest in the serial regime the paper's motivation
    # study uses (dop=1 leaves GRWS burning idle cores at max freq).
    for wl in {r["workload"] for r in result.rows}:
        pts = sorted(
            (r for r in result.rows if r["workload"] == wl),
            key=lambda r: r["dop"],
        )
        assert pts[0]["joss_vs_grws_energy"] < pts[-1]["joss_vs_grws_energy"]
