"""Task-granularity sweep."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import granularity


def test_granularity(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        granularity.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    # JOSS wins at every grain — fine tasks included, where the
    # coarsening path (paper section 5.3) keeps DVFS overhead at bay.
    assert result.summary["worst_ratio"] < 1.0
    assert result.summary["best_ratio"] < 0.85
    for row in result.rows:
        assert row["joss_vs_grws_energy"] < 1.0
    # The grain axis actually varied the task count by >10x.
    counts = [r["tasks"] for r in result.rows if r["benchmark"] == "mm"]
    assert max(counts) > 10 * min(counts)
