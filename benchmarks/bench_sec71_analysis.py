"""Section 7.1 — SparseLU/BMOD scheduler analysis."""

from __future__ import annotations

from conftest import emit

from repro.bench.experiments import sec71


def test_sec71_analysis(benchmark, results_dir, bench_config):
    result = benchmark.pedantic(
        sec71.run, args=(bench_config,), rounds=1, iterations=1
    )
    emit(result, results_dir)
    rows = {r["scheduler"]: r for r in result.rows}
    # GRWS splits BMOD across clusters (stealing); the model-based
    # schedulers concentrate it on Denver (paper's analysis).
    assert 0.1 < rows["GRWS"]["bmod_denver_fraction"] < 0.9
    for s in ("ERASE", "STEER", "JOSS"):
        assert rows[s]["bmod_denver_fraction"] > 0.6
    # STEER's CPU-frequency throttling raises memory energy vs GRWS...
    assert rows["STEER"]["mem_energy_j"] > rows["GRWS"]["mem_energy_j"]
    # ...and JOSS claws it back with the memory-DVFS knob.
    assert rows["JOSS"]["mem_energy_j"] < rows["STEER"]["mem_energy_j"]
    # Net: JOSS has the least total energy of all schedulers on SLU.
    joss_total = rows["JOSS"]["total_energy_j"]
    assert all(
        joss_total <= r["total_energy_j"] + 1e-9 for r in rows.values()
    )
    # JOSS's BMOD decision drops the memory frequency (compute-bound).
    assert "0.408" in rows["JOSS"]["decision"] or "0.665" in rows["JOSS"]["decision"] or "0.800" in rows["JOSS"]["decision"]
