"""Energy/performance trade-off exploration (paper scenario 2).

JOSS accepts a user performance constraint: "run each task at least
K x faster than the minimum-energy configuration would".  This example
sweeps K for the VGG-16 inference workload — the scenario the paper's
introduction motivates for latency-sensitive edge inference — and
prints the resulting frontier, plus MAXP as the upper anchor.

Run:  python examples/tradeoff_explorer.py
"""

from repro.bench.runner import BenchConfig, run

TARGETS = ["JOSS", "JOSS_1.2x", "JOSS_1.4x", "JOSS_1.8x", "JOSS_MAXP"]


def main() -> None:
    cfg = BenchConfig(scale=1.0, repetitions=2)
    print("VGG-16 inference under increasing performance constraints\n")
    print(f"{'variant':<12s} {'time (ms)':>10s} {'energy (J)':>11s} "
          f"{'speedup':>8s} {'premium':>8s}")
    base = None
    for name in TARGETS:
        m = run(("vg", name), config=cfg)
        if base is None:
            base = m
        speedup = base.makespan / m.makespan
        premium = m.total_energy / base.total_energy - 1
        print(f"{name:<12s} {m.makespan * 1e3:>10.1f} {m.total_energy:>11.3f} "
              f"{speedup:>7.2f}x {premium:>+7.1%}")
    print("\nTighter constraints buy speed with energy, mirroring the "
          "paper's Figure 9 (+6%/+13%/+32% at 1.2x/1.4x/1.8x).")


if __name__ == "__main__":
    main()
