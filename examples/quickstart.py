"""Quickstart: profile a platform, fit the JOSS models, schedule a workload.

Walks the full pipeline of the paper on the simulated Jetson TX2:

1. build the platform model;
2. characterise it with the 41 synthetic benchmarks and fit the three
   MPR models (install-time step; cached per process);
3. run SparseLU under the GRWS baseline and under JOSS;
4. compare energy/time and inspect JOSS's per-kernel decisions.

Run:  python examples/quickstart.py
"""

from repro.bench.runner import BenchConfig, run
from repro.hw.platform import jetson_tx2
from repro.models.training import profile_and_fit


def main() -> None:
    # 1-2. Platform + models.  `profile_and_fit` sweeps the synthetic
    # benchmarks over <T_C, N_C, f_C, f_M> and fits the performance,
    # CPU-power and memory-power regressions of paper section 4.
    suite = profile_and_fit(jetson_tx2, seed=0)
    print(f"profiled {suite.platform_name}: "
          f"{len(suite.models)} <T_C,N_C> model sets, "
          f"reference f_C={suite.f_c_ref} GHz / f_M={suite.f_m_ref} GHz")

    # 3. Run the SparseLU benchmark under both schedulers.
    cfg = BenchConfig(scale=1.0, repetitions=2)
    grws = run("slu/GRWS", config=cfg)
    joss = run("slu/JOSS", config=cfg)

    # 4. Compare.
    print()
    print(grws.summary())
    print(joss.summary())
    saving = 1 - joss.total_energy / grws.total_energy
    print(f"\nJOSS saves {saving:.1%} total energy vs GRWS "
          f"(paper reports 40.7% on average across the suite)")
    print("\nJOSS per-kernel decisions <T_C, N_C, f_C, f_M>:")
    for kernel, decision in sorted(joss.extras["decisions"].items()):
        print(f"  {kernel:12s} -> {decision}")
    print("\nThe paper's analysis kernel BMOD (91% of SparseLU tasks) "
          "lands on the Denver cluster, two cores, mid-low core frequency "
          "and a low memory frequency — the same character as the paper's "
          "<Denver, 2, 1.11 GHz, 0.8 GHz>.")


if __name__ == "__main__":
    main()
