"""Bring your own platform: a three-cluster big.MID.little SoC.

JOSS is not TX2-specific: any asymmetric multicore expressible as
clusters + a memory DVFS domain works.  This example defines a
three-cluster SoC (1 "prime" + 3 "big" + 4 "little" cores), profiles
it, fits the models, and lets JOSS schedule a mixed workload — showing
the per-kernel decisions adapt to the extra core type.

Run:  python examples/custom_platform.py
"""

from repro.exec_model.kernels import KernelSpec
from repro.hw.cluster import Cluster
from repro.hw.core import CoreType
from repro.hw.memory import MemorySystem
from repro.hw.opp import OppTable
from repro.hw.platform import Platform
from repro.hw.power import PowerModel
from repro.hw.voltage import VoltageCurve
from repro.models.training import profile_and_fit
from repro.runtime.dag import TaskGraph
from repro.runtime.executor import Executor
from repro.core.joss import JossScheduler

CPU_FREQS = (0.5, 0.8, 1.1, 1.4, 1.7, 2.0, 2.3)
MEM_FREQS = (0.5, 0.9, 1.3, 1.7, 2.1)

PRIME = CoreType("prime", giga_ops_per_ghz=3.0, stream_bw_per_ghz=8.0,
                 k_dyn=1.1, k_static=0.06, stall_activity=0.6)
BIG = CoreType("big", giga_ops_per_ghz=1.8, stream_bw_per_ghz=6.0,
               k_dyn=0.6, k_static=0.04, stall_activity=0.6)
LITTLE = CoreType("little", giga_ops_per_ghz=0.8, stream_bw_per_ghz=4.0,
                  k_dyn=0.25, k_static=0.02, stall_activity=0.65)


def my_soc() -> Platform:
    volt = VoltageCurve([(0.4, 0.75), (1.0, 0.78), (2.4, 1.05)])
    mem_volt = VoltageCurve.linear(1.05, 0.05, 0.4, 2.2)
    opps = OppTable(CPU_FREQS)
    clusters = [
        Cluster(0, PRIME, 1, opps, volt, core_id_base=0),
        Cluster(1, BIG, 3, opps, volt, core_id_base=1),
        Cluster(2, LITTLE, 4, opps, volt, core_id_base=4),
    ]
    memory = MemorySystem(OppTable(MEM_FREQS), mem_volt,
                          bw_cap_per_ghz=14.0, stream_bw_per_ghz=8.0)
    return Platform(clusters, memory, PowerModel(), name="my-soc")


def mixed_workload() -> TaskGraph:
    render = KernelSpec("render", w_comp=0.4, w_bytes=0.002,
                        type_affinity={"prime": 1.4, "big": 1.2})
    decode = KernelSpec("decode", w_comp=0.02, w_bytes=0.03)
    ui = KernelSpec("ui", w_comp=0.01, w_bytes=0.001)
    g = TaskGraph("phone-frame-pipeline")
    prev = None
    for _frame in range(40):
        d = g.add_task(decode, deps=[prev] if prev else None)
        r = g.add_task(render, deps=[d])
        u1 = g.add_task(ui, deps=[d])
        u2 = g.add_task(ui, deps=[d])
        prev = g.add_task(ui, deps=[r, u1, u2])
    return g


def main() -> None:
    suite = profile_and_fit(my_soc, seed=0)
    print(f"profiled {suite.platform_name}: "
          f"{sorted(suite.models)} resource configs\n")
    ex = Executor(my_soc(), JossScheduler(suite), seed=7)
    metrics = ex.run(mixed_workload())
    print(metrics.summary())
    print("\nJOSS decisions on the custom SoC:")
    for kernel, decision in sorted(metrics.extras["decisions"].items()):
        print(f"  {kernel:8s} -> {decision}")
    print("\nCompute-heavy 'render' gravitates to the fast clusters; the "
          "streaming 'decode' and tiny 'ui' kernels land where the "
          "energy/performance balance is best for them.")


if __name__ == "__main__":
    main()
