"""Scheduler shoot-out: regenerate a slice of the paper's Figure 8.

Runs all five evaluated schedulers (plus JOSS without the memory-DVFS
knob) on three representative workloads — compute-bound MM, memory-
bound MC and the kernel-diverse SparseLU — and prints GRWS-normalised
total energy, the paper's headline comparison.

Run:  python examples/scheduler_shootout.py
"""

from repro.bench.runner import BenchConfig, run

SCHEDULERS = ["GRWS", "ERASE", "Aequitas", "STEER", "JOSS_NoMemDVFS", "JOSS"]
WORKLOADS = ["mm-256", "mc-4096", "slu"]


def main() -> None:
    cfg = BenchConfig(scale=1.0, repetitions=2)
    print(f"{'workload':<10s}" + "".join(f"{s:>16s}" for s in SCHEDULERS))
    for wl in WORKLOADS:
        metrics = {s: run((wl, s), config=cfg) for s in SCHEDULERS}
        base = metrics["GRWS"].total_energy
        cells = "".join(
            f"{metrics[s].total_energy / base:>16.3f}" for s in SCHEDULERS
        )
        print(f"{wl:<10s}{cells}")
    print("\n(total energy normalised to GRWS; lower is better — JOSS "
          "should win or tie everywhere, as in the paper's Figure 8)")


if __name__ == "__main__":
    main()
