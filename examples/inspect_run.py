"""Deep-dive into one scheduled run with the analysis tooling.

Runs SparseLU under JOSS with tracing and energy attribution enabled,
then prints:

- the per-core execution timeline (who ran what, when);
- the DVFS actuation history of each frequency domain;
- per-kernel placement mixes (the paper's section 7.1 analysis);
- the dynamic-energy breakdown per kernel plus the shared idle floor.

Run:  python examples/inspect_run.py
"""

from repro.analysis import EnergyAttributor, energy_breakdown_report, placement_report
from repro.analysis.timeline import Timeline
from repro.core.joss import JossScheduler
from repro.hw.platform import jetson_tx2
from repro.models.training import profile_and_fit
from repro.runtime.executor import Executor
from repro.sim.trace import Tracer
from repro.workloads import build_workload


def main() -> None:
    suite = profile_and_fit(jetson_tx2, seed=0)
    tracer = Tracer(categories=["activity-start", "activity-end", "freq-change"])
    ex = Executor(jetson_tx2(), JossScheduler(suite), seed=11, tracer=tracer)
    attributor = EnergyAttributor(ex.engine)
    metrics = ex.run(build_workload("slu", seed=3))

    print(metrics.summary())
    print(f"\nJOSS decisions: {metrics.extras['decisions']}")

    print("\n--- execution timeline " + "-" * 40)
    timeline = Timeline.from_tracer(tracer)
    print(timeline.render_ascii(width=90))

    print("\n--- placement mix " + "-" * 46)
    print(placement_report(metrics))

    print("\n--- energy breakdown " + "-" * 43)
    print(energy_breakdown_report(attributor))
    print(
        f"\nBMOD's share of dynamic energy: "
        f"{attributor.fraction_of('slu.bmod'):.0%} "
        f"(it is ~{metrics.per_kernel['slu.bmod'].invocations} of "
        f"{metrics.tasks_executed} tasks)"
    )


if __name__ == "__main__":
    main()
