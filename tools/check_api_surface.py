#!/usr/bin/env python
"""CI check: the documented facade and the real one must agree.

``docs/api.md`` carries a table whose first column holds the
top-level facade names (rows shaped ``| `repro.NAME` | ... |``).
This script fails (exit 1) when:

1. a documented name is missing from ``repro.__all__`` (or vice
   versa — the facade grew without documentation);
2. any facade name does not actually import/resolve.

Run from the repo root::

    PYTHONPATH=src python tools/check_api_surface.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
API_MD = ROOT / "docs" / "api.md"

#: A facade table row: | `repro.name` | ... |
_ROW = re.compile(r"^\|\s*`repro\.([A-Za-z_][A-Za-z0-9_]*)`\s*\|")


def documented_names(text: str) -> list[str]:
    return [m.group(1) for line in text.splitlines()
            if (m := _ROW.match(line.strip()))]


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    import repro

    documented = documented_names(API_MD.read_text(encoding="utf-8"))
    if not documented:
        print(f"FAIL: no facade table rows found in {API_MD}")
        return 1

    exported = [n for n in repro.__all__ if n != "__version__"]
    missing_docs = sorted(set(exported) - set(documented))
    missing_code = sorted(set(documented) - set(exported))
    errors = []
    if missing_docs:
        errors.append(f"exported but undocumented in docs/api.md: {missing_docs}")
    if missing_code:
        errors.append(f"documented but not in repro.__all__: {missing_code}")

    for name in documented:
        if name in set(missing_code):
            continue
        try:
            obj = getattr(repro, name)
        except Exception as exc:  # noqa: BLE001 — report any import failure
            errors.append(f"repro.{name} failed to resolve: {exc!r}")
            continue
        if obj is None:
            errors.append(f"repro.{name} resolved to None")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"OK: facade surface consistent ({len(documented)} names): "
          + ", ".join(documented))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
