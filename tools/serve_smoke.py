#!/usr/bin/env python
"""CI smoke test for the repro scheduling service.

Starts a real ``repro serve`` daemon (warm pool, 2 workers), submits a
small fig8-style job plus an identical duplicate, follows a third
submission's progress events, and shuts the daemon down with SIGTERM —
asserting at each step:

* the first submission executes on the pool and succeeds;
* the duplicate is answered from the result cache without a pool
  dispatch, with byte-identical metrics;
* the follow stream delivers lifecycle events before the final job;
* SIGTERM drains and the daemon exits 0 within the timeout.

The daemon's JSONL event log is left at ``--events`` for artifact
upload.  Exit code 0 = all checks passed.

Usage::

    python tools/serve_smoke.py [--events serve-events.jsonl]
                                [--timeout 300] [--scale 0.5]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.bench import BenchConfig  # noqa: E402
from repro.serve import ServeClient  # noqa: E402

CHECKS: list[str] = []


def check(ok: bool, what: str) -> None:
    CHECKS.append(f"{'ok' if ok else 'FAIL'}: {what}")
    print(CHECKS[-1], flush=True)
    if not ok:
        raise SystemExit(f"serve smoke failed at: {what}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--events", default="serve-events.jsonl",
                    help="where to leave the daemon's JSONL event log")
    ap.add_argument("--timeout", type=float, default=300.0,
                    help="overall daemon shutdown budget (seconds)")
    ap.add_argument("--scale", type=float, default=0.5)
    args = ap.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    ready = tmp / "ready.json"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workers", "2",
            "--cache-dir", str(tmp / "cache"),
            "--ready-file", str(ready),
            "--events-out", args.events,
        ],
        cwd=REPO, env=env,
    )
    try:
        deadline = time.monotonic() + 60
        while not ready.exists():
            if proc.poll() is not None:
                raise SystemExit("daemon died during startup")
            if time.monotonic() > deadline:
                raise SystemExit("daemon never became ready")
            time.sleep(0.05)
        addr = json.loads(ready.read_text())["tcp"]
        check(True, f"daemon ready on {addr}")

        cfg = BenchConfig(scale=args.scale)
        # A fig8-style grid point: energy comparison workload/scheduler.
        spec = cfg.job_spec("hd-small", "GRWS", 0)

        with ServeClient(addr, tenant="ci") as c:
            job = c.wait(c.submit(spec, timeout=args.timeout)["id"],
                         timeout=args.timeout)
            check(job["state"] == "done", "first submission executed")
            check(job["mode"] == "pool", "first submission ran on the pool")
            check(job["cached"] is False, "first submission was not cached")

            dup = c.submit(spec)
            check(dup["state"] == "done" and dup["cached"] is True,
                  "duplicate answered from the result cache")
            check(dup["metrics"] == job["metrics"],
                  "cached metrics identical to the executed run")
            snap = c.metrics()["snapshot"]
            check(snap["repro_serve_cache_hits_total"]["series"] == {"": 1},
                  "cache-hit counter incremented exactly once")
            check(
                sum(
                    snap["repro_serve_pool_dispatch_total"]["series"].values()
                ) == 1,
                "duplicate did not dispatch to the pool",
            )

            stream = c.submit(
                cfg.job_spec("fb", "Aequitas", 0),
                timeout=args.timeout, follow=True,
            )
            seen = []
            for kind, doc in stream:
                if kind == "event":
                    seen.append(doc["event"]["type"])
            check(seen[0] == "job_submitted" and "job_started" in seen
                  and seen[-1] == "job_finished",
                  f"follow stream delivered lifecycle events ({seen})")
            check(stream.job["state"] == "done", "followed job completed")

        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=args.timeout)
        check(proc.returncode == 0,
              f"SIGTERM drained and exited 0 (rc={proc.returncode})")

        events = [json.loads(line)
                  for line in Path(args.events).read_text().splitlines()]
        types = {ev["type"] for ev in events}
        check({"serve_started", "job_finished", "serve_stopped"} <= types,
              f"event log covers the daemon lifecycle ({len(events)} events)")
        print(f"\nserve smoke: {len(CHECKS)} checks passed; "
              f"event log -> {args.events}")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
