#!/usr/bin/env python
"""CI smoke test for deadline-aware scheduling under open arrivals.

Drives the real CLI (``repro run``) with a bursty arrival storm, an EDF
baseline, and a ``--goal deadline-…`` JOSS configuration, then audits
the JSON metrics report — asserting that:

* the arrival stream actually released DAG instances (nonzero);
* no DAG instance was lost (completed == arrived for every scheduler);
* the tardiness columns (``deadline_misses``, ``total_tardiness``,
  ``max_tardiness``) are present in the report for every scheduler;
* the tardiness accounting is internally consistent (max <= sum, and
  misses > 0 implies tardiness > 0).

Exit code 0 = all checks passed.

Usage::

    python tools/deadline_smoke.py [--report deadline-metrics.json]
                                   [--scale 0.5] [--deadline 0.05]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]

CHECKS: list[str] = []


def check(ok: bool, what: str) -> None:
    CHECKS.append(f"{'ok' if ok else 'FAIL'}: {what}")
    print(CHECKS[-1], flush=True)
    if not ok:
        raise SystemExit(f"deadline smoke failed at: {what}")


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--report", default="deadline-metrics.json",
                    help="where to leave the CLI's JSON metrics report")
    ap.add_argument("--scale", type=float, default=0.5)
    ap.add_argument("--deadline", type=float, default=0.05,
                    help="relative per-instance deadline (seconds)")
    ap.add_argument("--count", type=int, default=12,
                    help="number of DAG instances to release")
    args = ap.parse_args()

    report = Path(args.report)
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    cmd = [
        sys.executable, "-m", "repro.cli", "run",
        "hd-small", "edf",
        "--goal", f"deadline-{args.deadline:g}s",
        "--scale", str(args.scale),
        "--repetitions", "1",
        "--arrivals", "bursty",
        "--arrival-rate", "60",
        "--arrival-count", str(args.count),
        "--arrival-deadline", str(args.deadline),
        "--arrival-seed", "7",
        "-o", str(report),
    ]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, cwd=REPO, env=env)
    check(proc.returncode == 0, "CLI run exits 0")
    check(report.is_file(), f"JSON report written to {report}")

    rows = json.loads(report.read_text())
    check(len(rows) == 2, "report covers both schedulers (EDF + goal)")
    for row in rows:
        sched = row.get("scheduler", "?")
        for col in ("deadline_misses", "total_tardiness", "max_tardiness",
                    "dags_arrived", "dags_completed"):
            check(col in row, f"{sched}: column {col!r} present")
        check(row["dags_arrived"] == args.count,
              f"{sched}: all {args.count} arrivals released "
              f"(got {row['dags_arrived']})")
        check(row["dags_completed"] == row["dags_arrived"],
              f"{sched}: no DAG instances lost "
              f"({row['dags_completed']}/{row['dags_arrived']})")
        check(row["max_tardiness"] <= row["total_tardiness"] + 1e-12,
              f"{sched}: max tardiness <= total tardiness")
        if row["deadline_misses"]:
            check(row["total_tardiness"] > 0,
                  f"{sched}: misses imply nonzero tardiness")
        else:
            check(row["total_tardiness"] == 0,
                  f"{sched}: no misses imply zero tardiness")

    print(f"\ndeadline smoke: {len(CHECKS)} checks passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
