"""Tests for fault specifications and campaign hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FaultError
from repro.faults import FaultCampaign, FaultSpec
from repro.hw import jetson_tx2


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec("sensor-explode")

    def test_negative_onset_rejected(self):
        with pytest.raises(FaultError):
            FaultSpec("sensor-dropout", onset=-1.0)

    def test_window_semantics(self):
        f = FaultSpec("sensor-dropout", onset=1.0, duration=2.0)
        assert not f.active(0.5)
        assert f.active(1.0)
        assert f.active(2.9)
        assert not f.active(3.0)
        assert f.end == 3.0

    def test_open_ended_window(self):
        f = FaultSpec("model-bias", onset=1.0, duration=0.0)
        assert f.active(1e9)
        assert f.end == float("inf")

    def test_target_matching(self):
        assert FaultSpec("dvfs-stuck", target="*").matches("cpu0")
        assert FaultSpec("dvfs-stuck", target="cpu0").matches("cpu0")
        assert not FaultSpec("dvfs-stuck", target="cpu0").matches("emc")

    def test_dict_round_trip(self):
        f = FaultSpec(
            "sensor-bias", onset=0.5, duration=1.0, magnitude=1.2,
            params={"offset": 0.3},
        )
        assert FaultSpec.from_dict(f.to_dict()) == f

    def test_params_canonicalised(self):
        a = FaultSpec("sensor-bias", params={"a": 1, "b": 2})
        b = FaultSpec("sensor-bias", params={"b": 2, "a": 1})
        assert a == b


class TestFaultCampaign:
    def _campaign(self, seed=7):
        return FaultCampaign(
            seed=seed,
            faults=(
                FaultSpec("sensor-dropout", onset=0.1, duration=0.5,
                          magnitude=0.5),
                FaultSpec("dvfs-stuck", target="cpu1", onset=0.2,
                          duration=0.3),
            ),
            name="demo",
        )

    def test_hash_is_stable_and_content_addressed(self):
        assert self._campaign().campaign_hash == self._campaign().campaign_hash
        assert (
            self._campaign(seed=7).campaign_hash
            != self._campaign(seed=8).campaign_hash
        )

    def test_dict_round_trip_preserves_hash(self):
        c = self._campaign()
        again = FaultCampaign.from_dict(c.to_dict())
        assert again == c
        assert again.campaign_hash == c.campaign_hash

    def test_rng_streams_independent_and_reproducible(self):
        c = self._campaign()
        a1 = c.rng_for(0).random(8)
        a2 = c.rng_for(0).random(8)
        b = c.rng_for(1).random(8)
        np.testing.assert_array_equal(a1, a2)
        assert not np.array_equal(a1, b)

    def test_non_faultspec_rejected(self):
        with pytest.raises(FaultError):
            FaultCampaign(faults=({"kind": "sensor-dropout"},))

    def test_empty_campaign(self):
        c = FaultCampaign()
        assert c.empty
        assert len(c) == 0


class TestValidation:
    def test_unplug_bad_target(self):
        c = FaultCampaign(faults=(FaultSpec("core-unplug", target="denver"),))
        with pytest.raises(FaultError):
            c.validate_for(jetson_tx2())

    def test_unplug_out_of_range(self):
        c = FaultCampaign(faults=(FaultSpec("core-unplug", target="99"),))
        with pytest.raises(FaultError):
            c.validate_for(jetson_tx2())

    def test_whole_cluster_unplug_rejected(self):
        # TX2 cluster 0 = cores 0 and 1 (Denver): overlapping unplugs
        # covering both would strand queued work.
        c = FaultCampaign(faults=(
            FaultSpec("core-unplug", target="0", onset=0.0, duration=1.0),
            FaultSpec("core-unplug", target="1", onset=0.5, duration=1.0),
        ))
        with pytest.raises(FaultError):
            c.validate_for(jetson_tx2())

    def test_staggered_unplugs_allowed(self):
        # Same cores, but the windows never overlap: always one online.
        c = FaultCampaign(faults=(
            FaultSpec("core-unplug", target="0", onset=0.0, duration=0.4),
            FaultSpec("core-unplug", target="1", onset=0.5, duration=0.4),
        ))
        c.validate_for(jetson_tx2())  # does not raise

    def test_partial_cluster_unplug_allowed(self):
        c = FaultCampaign(faults=(
            FaultSpec("core-unplug", target="2", onset=0.0, duration=0.0),
        ))
        c.validate_for(jetson_tx2())
