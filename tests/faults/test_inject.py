"""Unit tests for the fault injectors (taps and proxies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FrequencyError
from repro.faults import FaultCampaign, FaultSpec, PerturbedSuite, SensorTap
from repro.faults.inject import DvfsTap
from repro.hw.dvfs import DvfsController


class FakeSim:
    """Just enough simulator for the taps (they only read ``now``)."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def _rng(campaign_seed=0, index=0):
    return FaultCampaign(seed=campaign_seed).rng_for(index)


class TestSensorTap:
    def test_inactive_fault_passes_through(self):
        spec = FaultSpec("sensor-dropout", onset=5.0, duration=1.0,
                         magnitude=1.0)
        tap = SensorTap(FakeSim(0.0), lambda: {"cpu": 2.0}, [(spec, _rng())])
        assert tap() == {"cpu": 2.0}

    def test_dropout_returns_none(self):
        spec = FaultSpec("sensor-dropout", magnitude=1.0)  # always drop
        tap = SensorTap(FakeSim(), lambda: {"cpu": 2.0}, [(spec, _rng())])
        assert tap() is None

    def test_dropout_is_seed_deterministic(self):
        spec = FaultSpec("sensor-dropout", magnitude=0.5)

        def run():
            tap = SensorTap(FakeSim(), lambda: {"cpu": 2.0}, [(spec, _rng())])
            return [tap() is None for _ in range(50)]

        assert run() == run()

    def test_stuck_holds_pre_fault_value(self):
        spec = FaultSpec("sensor-stuck", onset=1.0, duration=2.0)
        sim = FakeSim(0.0)
        readings = {"cpu": 1.0}
        tap = SensorTap(sim, lambda: dict(readings), [(spec, _rng())])
        assert tap() == {"cpu": 1.0}  # healthy: records last value
        sim.now = 1.5
        readings["cpu"] = 9.0  # truth changes inside the window...
        assert tap() == {"cpu": 1.0}  # ...but the sensor reads stale
        sim.now = 3.5
        assert tap() == {"cpu": 9.0}  # window over: live again

    def test_saturate_clamps(self):
        spec = FaultSpec("sensor-saturate", magnitude=1.5)
        tap = SensorTap(FakeSim(), lambda: {"cpu": 4.0, "mem": 1.0},
                        [(spec, _rng())])
        assert tap() == {"cpu": 1.5, "mem": 1.0}

    def test_bias_gain_and_offset(self):
        spec = FaultSpec("sensor-bias", magnitude=2.0,
                         params={"offset": 0.5})
        tap = SensorTap(FakeSim(), lambda: {"cpu": 1.0}, [(spec, _rng())])
        assert tap() == {"cpu": 2.5}


class TestDvfsTap:
    def _tap(self, sim, tx2, spec, latency=100e-6):
        ctl = DvfsController(sim, tx2.clusters[0], latency, name="cpu0")
        tap = DvfsTap(sim, ctl, [(spec, _rng())])
        return ctl, tap

    def test_stuck_ignores_requests(self, sim, tx2):
        ctl, tap = self._tap(sim, tx2, FaultSpec("dvfs-stuck"))
        got = ctl.request(1.11)
        sim.run()
        assert got == 2.04  # the current frequency, unchanged
        assert tx2.clusters[0].freq == 2.04
        assert ctl.transitions == 0
        assert ctl.requests == 1  # still counted as a request
        assert tap.ignored == 1

    def test_ignore_probability_zero_passes_through(self, sim, tx2):
        ctl, tap = self._tap(
            sim, tx2, FaultSpec("dvfs-ignore", magnitude=0.0)
        )
        ctl.request(1.11)
        sim.run()
        assert tx2.clusters[0].freq == 1.11
        assert tap.ignored == 0

    def test_error_raises_transient_frequency_error(self, sim, tx2):
        ctl, tap = self._tap(
            sim, tx2, FaultSpec("dvfs-error", magnitude=1.0)
        )
        with pytest.raises(FrequencyError) as exc:
            ctl.request(1.11)
        assert getattr(exc.value, "transient", False)
        assert tap.errors == 1

    def test_jitter_stretches_latency_and_restores(self, sim, tx2):
        ctl, tap = self._tap(
            sim, tx2, FaultSpec("dvfs-jitter", magnitude=2.0),
            latency=100e-6,
        )
        ctl.request(1.11)
        sim.run()
        assert ctl.latency == 100e-6  # restored after the request
        assert sim.now > 100e-6  # the transition took longer
        assert tx2.clusters[0].freq == 1.11
        assert tap.jittered == 1

    def test_core_cap_clamps_requests(self, sim, tx2):
        ctl, _ = self._tap(
            sim, tx2, FaultSpec("core-cap", magnitude=1.0), latency=0.0
        )
        ctl.request(2.04)
        assert tx2.clusters[0].freq <= 1.0

    def test_window_over_restores_normal_behaviour(self, sim, tx2):
        spec = FaultSpec("dvfs-stuck", onset=0.0, duration=1e-9)
        ctl, _ = self._tap(sim, tx2, spec, latency=0.0)
        sim.schedule(1.0, lambda: ctl.request(1.11))
        sim.run()
        assert tx2.clusters[0].freq == 1.11


class TestPerturbedSuite:
    @pytest.fixture(scope="class")
    def suite(self):
        from repro.hw import jetson_tx2
        from repro.models import profile_and_fit

        return profile_and_fit(jetson_tx2, seed=0)

    def _grids(self, suite):
        return np.asarray([0.5, 1.0, 2.0]), np.asarray([0.5, 1.8])

    def test_inactive_fault_leaves_tables_alone(self, suite):
        spec = FaultSpec("model-bias", onset=5.0, magnitude=1.0)
        proxy = PerturbedSuite(suite, FakeSim(0.0), [(spec, _rng())])
        cl, nc = suite.config_keys()[0]
        f_c, f_m = self._grids(suite)
        a = suite.build_table(cl, nc, 0.5, 0.01, f_c, f_m)
        b = proxy.build_table(cl, nc, 0.5, 0.01, f_c, f_m)
        np.testing.assert_array_equal(a.time, b.time)

    def test_active_fault_scales_time_grid(self, suite):
        spec = FaultSpec("model-bias", magnitude=1.0)
        proxy = PerturbedSuite(suite, FakeSim(0.0), [(spec, _rng())])
        cl, nc = suite.config_keys()[0]
        f_c, f_m = self._grids(suite)
        clean = suite.build_table(cl, nc, 0.5, 0.01, f_c, f_m)
        bent = proxy.build_table(cl, nc, 0.5, 0.01, f_c, f_m)
        ratio = bent.time / clean.time
        assert np.allclose(ratio, ratio.flat[0])  # one factor per table
        assert ratio.flat[0] != pytest.approx(1.0)
        # Powers untouched: only the performance model is mispredicted.
        np.testing.assert_array_equal(clean.cpu_power, bent.cpu_power)

    def test_wrapped_suite_never_mutated(self, suite):
        spec = FaultSpec("model-bias", magnitude=1.0)
        proxy = PerturbedSuite(suite, FakeSim(0.0), [(spec, _rng())])
        cl, nc = suite.config_keys()[0]
        f_c, f_m = self._grids(suite)
        before = suite.build_table(cl, nc, 0.5, 0.01, f_c, f_m).time.copy()
        proxy.build_table(cl, nc, 0.5, 0.01, f_c, f_m)
        after = suite.build_table(cl, nc, 0.5, 0.01, f_c, f_m).time
        np.testing.assert_array_equal(before, after)

    def test_delegates_everything_else(self, suite):
        proxy = PerturbedSuite(suite, FakeSim(), [])
        assert proxy.f_c_ref == suite.f_c_ref
        assert proxy.config_keys() == suite.config_keys()

    def test_build_tables_goes_through_interception(self, suite):
        """The batched build path must not slip past the proxy via
        ``__getattr__`` delegation — every table still gets its own
        perturbation draw, matching the unbatched path."""
        spec = FaultSpec("model-bias", magnitude=1.0)
        f_c, f_m = self._grids(suite)
        params = {
            key: (0.5, 0.01) for key in suite.config_keys()
        }
        grids = {cl: (f_c, f_m) for cl, _ in suite.config_keys()}
        proxy = PerturbedSuite(suite, FakeSim(0.0), [(spec, _rng())])
        bent = proxy.build_tables(params, grids)
        clean = suite.build_tables(params, grids)
        # Same RNG, fresh proxy: the unbatched loop draws identically.
        proxy2 = PerturbedSuite(suite, FakeSim(0.0), [(spec, _rng())])
        for key in params:
            ratio = bent[key].time / clean[key].time
            assert np.allclose(ratio, ratio.flat[0])
            assert ratio.flat[0] != pytest.approx(1.0)
            single = proxy2.build_table(key[0], key[1], 0.5, 0.01, f_c, f_m)
            np.testing.assert_array_equal(bent[key].time, single.time)

    def test_fault_scaling_invalidates_energy_memo(self, suite):
        """Scaling ``time`` after a memoised energy query must not
        serve the stale grid."""
        spec = FaultSpec("model-bias", magnitude=1.0)
        proxy = PerturbedSuite(suite, FakeSim(0.0), [(spec, _rng())])
        cl, nc = suite.config_keys()[0]
        f_c, f_m = self._grids(suite)
        bent = proxy.build_table(cl, nc, 0.5, 0.01, f_c, f_m)
        energy = bent.energy_grid(2.0)
        idle = bent.idle_cpu[:, None] / 2.0 + bent.idle_mem[None, :] / 2.0
        expected = bent.time * (bent.cpu_power + bent.mem_power + idle)
        np.testing.assert_array_equal(energy, expected)
