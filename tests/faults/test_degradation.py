"""Acceptance tests: survivability, graceful degradation, determinism.

ISSUE criteria covered here: every built-in fault model completes a
run with fallback transitions visible in RunMetrics and the Chrome
trace; the same campaign replays bit-identically; a zero-fault
campaign is bit-identical to the fault-free baseline; faulted jobs
compose with the sweep cache.
"""

from __future__ import annotations

import json

import pytest

from repro.core import JossScheduler
from repro.exec_model import KernelSpec
from repro.faults import FaultCampaign, FaultSpec, builtin_campaigns
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskGraph
from repro.sim.trace import Tracer


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def _graph(n=120):
    k = KernelSpec("ft.k", w_comp=0.08, w_bytes=0.004)
    g = TaskGraph("faults")
    prev = None
    for _ in range(n // 4):
        layer = [g.add_task(k, deps=[prev] if prev else None) for _ in range(3)]
        prev = g.add_task(k, deps=layer)
    return g


def _run(suite, *, health=True, faults=None, tracer=None, seed=7, **kw):
    sched = JossScheduler(suite, health=health)
    ex = Executor(jetson_tx2(), sched, seed=seed, faults=faults,
                  tracer=tracer, **kw)
    return ex.run(_graph())


@pytest.fixture(scope="module")
def baseline(suite):
    return _run(suite, faults=None)


class TestSurvivability:
    @pytest.mark.parametrize("model", [
        "sensor-dropout", "sensor-stuck", "dvfs-stuck", "dvfs-ignore",
        "core-unplug", "model-bias",
    ])
    def test_every_builtin_model_completes(self, suite, baseline, model):
        campaign = builtin_campaigns(baseline.makespan, seed=3)[model]
        m = _run(suite, faults=campaign)
        assert m.tasks_executed == baseline.tasks_executed
        assert m.makespan > 0
        assert m.total_energy > 0
        summary = m.extras["faults"]
        assert summary["campaign"] == model
        assert summary["faults"] == 1

    def test_core_unplug_visible_in_trace_and_counters(self, suite, baseline):
        campaign = builtin_campaigns(baseline.makespan, seed=3)["core-unplug"]
        tracer = Tracer()
        m = _run(suite, faults=campaign, tracer=tracer)
        assert m.extras["faults"]["core_unplugs"] == 1
        assert len(tracer.records("core-unplug")) == 1
        assert len(tracer.records("core-replug")) == 1
        # The offline window never hosts an activity on the unplugged core.
        unplug_t = tracer.records("core-unplug")[0].time
        replug_t = tracer.records("core-replug")[0].time
        for rec in tracer.records("activity-start"):
            if rec.payload.get("core") == 0:
                assert not (unplug_t <= rec.time < replug_t)


class TestGracefulDegradation:
    def test_sensor_silence_forces_global_fallback(self, suite):
        """A totally dead sensor (100% dropout, open-ended) must push
        the scheduler into governor fallback, visible in RunMetrics and
        as instant events in the Chrome trace."""
        campaign = FaultCampaign(
            seed=1,
            faults=(FaultSpec("sensor-dropout", onset=0.0, magnitude=1.0),),
            name="dead-sensor",
        )
        tracer = Tracer()
        m = _run(suite, faults=campaign, tracer=tracer,
                 sensor_interval_s=0.001)
        assert m.tasks_executed == 120
        assert m.fallback_count >= 1
        assert m.degraded_time > 0
        assert m.degraded_energy > 0
        assert len(tracer.records("degraded-enter")) >= 1
        # on_run_end closes the still-open window with a degraded-exit.
        assert len(tracer.records("degraded-exit")) == len(
            tracer.records("degraded-enter")
        )
        names = {e["name"] for e in tracer.to_chrome_trace()["traceEvents"]}
        assert "degraded-enter" in names
        assert m.extras["faults"]["sensor_dropped"] > 0

    def test_drift_degradation_recovers_and_resamples(self, suite):
        """Hair-trigger health policy: natural noise trips the drift
        monitor, the kernel serves its fallback hold, recovers, and
        re-enters sampling — the run still drains."""
        health = {"tolerance": 0.005, "patience": 1, "min_observations": 1,
                  "recovery_hold": 3}
        tracer = Tracer()
        m = _run(suite, health=health, tracer=tracer)
        assert m.tasks_executed == 120
        assert m.fallback_count >= 1
        assert m.degraded_time > 0
        assert m.extras["health_recoveries"] >= 1
        assert len(tracer.records("degraded-enter")) >= 1
        assert len(tracer.records("degraded-exit")) >= 1

    def test_healthy_run_reports_no_degradation(self, suite, baseline):
        assert baseline.fallback_count == 0
        assert baseline.degraded_time == 0.0
        assert baseline.degraded_energy == 0.0
        assert baseline.extras["health_recoveries"] == 0


class TestDeterminism:
    def test_same_campaign_replays_bit_identical(self, suite, baseline):
        campaign = builtin_campaigns(baseline.makespan, seed=9)["dvfs-ignore"]

        def once():
            m = _run(suite, faults=campaign)
            return json.dumps(m.to_dict(), sort_keys=True)

        assert once() == once()

    def test_zero_fault_campaign_is_bit_identical_to_no_faults(self, suite):
        plain = _run(suite, faults=None)
        empty = _run(suite, faults=FaultCampaign(seed=5))
        assert json.dumps(plain.to_dict(), sort_keys=True) == json.dumps(
            empty.to_dict(), sort_keys=True
        )

    def test_health_monitoring_alone_is_paper_identical(self, suite):
        """With no faults and the default (wide) policy the monitor only
        watches — energy and makespan match the health=None run."""
        off = _run(suite, health=None)
        on = _run(suite, health=True)
        assert on.total_energy == off.total_energy
        assert on.makespan == off.makespan
        assert on.tasks_executed == off.tasks_executed


class TestSweepComposition:
    def _campaign(self):
        return FaultCampaign(
            seed=2,
            faults=(FaultSpec("dvfs-stuck", onset=0.001, duration=0.02),),
            name="sweep-demo",
        )

    def test_faulted_job_hashes_differently(self):
        from repro.sweep.spec import JobSpec

        plain = JobSpec(workload="fb", scheduler="JOSS")
        faulted = JobSpec(workload="fb", scheduler="JOSS",
                          faults=self._campaign())
        assert plain.job_hash != faulted.job_hash
        assert plain.fault_campaign() is None
        rebuilt = faulted.fault_campaign()
        assert rebuilt == self._campaign()
        assert rebuilt.campaign_hash == self._campaign().campaign_hash

    def test_cache_round_trip_of_faulted_job(self, tmp_path):
        from repro.sweep import ResultCache, run_sweep
        from repro.sweep.spec import JobSpec

        job = JobSpec(workload="fb", scheduler="JOSS",
                      scheduler_kwargs={"health": True},
                      faults=self._campaign())
        cache = ResultCache(tmp_path)
        first = run_sweep([job], cache=cache)
        first.raise_on_failure()
        assert not first.outcomes[0].cached
        second = run_sweep([job], cache=cache)
        second.raise_on_failure()
        assert second.outcomes[0].cached
        a = first.outcomes[0].metrics.to_dict()
        b = second.outcomes[0].metrics.to_dict()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
