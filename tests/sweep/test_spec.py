"""JobSpec / SweepSpec: canonical hashing and grid enumeration."""

from __future__ import annotations

import pytest

from repro.bench.runner import BenchConfig
from repro.errors import SweepError
from repro.sweep.spec import SCHEMA_VERSION, JobSpec, SweepSpec, freeze, thaw


def test_job_hash_is_stable_and_order_insensitive():
    a = JobSpec("fb", "GRWS", scheduler_kwargs={"x": 1, "y": [1, 2]})
    b = JobSpec("fb", "GRWS", scheduler_kwargs={"y": [1, 2], "x": 1})
    assert a == b
    assert a.job_hash == b.job_hash
    assert len(a.job_hash) == 64


@pytest.mark.parametrize(
    "change",
    [
        {"workload": "dp"},
        {"scheduler": "JOSS"},
        {"platform": "odroid-xu4"},
        {"scale": 2.0},
        {"seed": 12},
        {"workload_seed": 4},
        {"profile_seed": 1},
        {"repetition": 1},
        {"scheduler_kwargs": {"coordination": "max"}},
        {"workload_overrides": {"dop": 4}},
    ],
)
def test_any_spec_change_changes_the_hash(change):
    base = JobSpec("fb", "GRWS")
    changed = JobSpec(**{**base.to_dict(), **change})
    assert changed.job_hash != base.job_hash


def test_schema_version_is_part_of_the_hash():
    # The canonical form embeds the schema version: bumping it must
    # invalidate every previously cached result.
    assert f'"schema_version":{SCHEMA_VERSION}' in JobSpec("fb", "GRWS").canonical_json()


def test_round_trip_through_dict():
    job = JobSpec(
        "slu", "JOSS", scale=2.0, repetition=3,
        scheduler_kwargs={"coordination": "mean"},
        workload_overrides={"dop": 8},
    )
    again = JobSpec.from_dict(job.to_dict())
    assert again == job
    assert again.job_hash == job.job_hash
    assert again.scheduler_kwargs_dict() == {"coordination": "mean"}
    assert again.workload_overrides_dict() == {"dop": 8}


def test_executor_seed_mirrors_runner():
    assert JobSpec("fb", "GRWS", seed=11, repetition=2).executor_seed == 2011


def test_freeze_thaw_round_trip():
    value = {"b": [1, 2, {"c": True}], "a": None}
    assert thaw(freeze(value)) == {"a": None, "b": [1, 2, {"c": True}]}
    with pytest.raises(SweepError):
        freeze({"bad": object()})


def test_sweep_enumeration_order_and_size():
    spec = SweepSpec(
        ["fb", "dp"], ["GRWS", "JOSS"], scales=(1.0, 2.0), repetitions=2
    )
    jobs = spec.jobs()
    assert len(jobs) == len(spec) == 2 * 2 * 2 * 2
    # Workload-major deterministic order.
    assert [j.workload for j in jobs[:8]] == ["fb"] * 8
    assert jobs[0].scheduler == "GRWS" and jobs[0].scale == 1.0
    assert [j.repetition for j in jobs[:2]] == [0, 1]
    assert len({j.job_hash for j in jobs}) == len(jobs)
    assert spec.sweep_hash == SweepSpec(
        ["fb", "dp"], ["GRWS", "JOSS"], scales=(1.0, 2.0), repetitions=2
    ).sweep_hash


def test_sweep_validation():
    with pytest.raises(SweepError):
        SweepSpec([], ["GRWS"])
    with pytest.raises(SweepError):
        SweepSpec(["fb"], ["GRWS"], repetitions=0)


def test_from_bench_config_matches_runner_settings():
    cfg = BenchConfig(scale=1.5, repetitions=3, seed=7)
    spec = SweepSpec.from_bench_config(cfg, ["fb"], ["GRWS"])
    job = spec.jobs()[0]
    assert spec.platform == "jetson-tx2"
    assert job.scale == 1.5
    assert job.seed == 7
    assert spec.repetitions == 3
    assert "1 workloads" in spec.describe()


def test_arrivals_participate_in_hash_and_round_trip():
    base = JobSpec(workload="fb", scheduler="GRWS")
    storm = JobSpec(
        workload="fb",
        scheduler="GRWS",
        arrivals={"pattern": "bursty", "rate": 60.0, "count": 6, "seed": 2},
    )
    assert storm.job_hash != base.job_hash
    again = JobSpec.from_dict(storm.to_dict())
    assert again.job_hash == storm.job_hash
    assert again.arrival_spec() == storm.arrival_spec()
    assert "+burstyx6" in storm.label()
    assert base.arrival_spec() is None
