"""Sweep state forking: golden A/B identity, lifecycle, pool reuse.

The contract under test: sharing job-invariant state (workload-graph
templates, timing-breakdown memos) across the jobs one process runs is
**result-neutral** — every metric of every job is byte-identical with
and without the :class:`~repro.sweep.fork.ForkCache`, including jobs
running fault campaigns, in serial sweeps and on warm pools alike.
"""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.faults.spec import FaultCampaign, FaultSpec
from repro.obs import MetricRegistry
from repro.runtime.task import TaskState
from repro.sweep import pool as pool_mod
from repro.sweep.engine import execute_job, run_sweep
from repro.sweep.fork import ForkCache
from repro.sweep.spec import JobSpec, SweepSpec
from repro.sweep.telemetry import SweepTelemetry
from repro.workloads.registry import build_workload


@pytest.fixture(autouse=True)
def fresh_pool():
    """Every test starts and ends without a cached warm pool."""
    pool_mod.shutdown_warm_pool()
    yield
    pool_mod.shutdown_warm_pool()


# ----------------------------------------------------------------------
# TaskGraph.fork
# ----------------------------------------------------------------------
class TestGraphFork:
    def test_fork_shares_kernels_with_fresh_task_state(self):
        g = build_workload("hd-small", scale=0.5, seed=3)
        f = g.fork()
        assert f is not g and len(f) == len(g)
        for orig, clone in zip(g.tasks, f.tasks):
            assert clone is not orig
            assert clone.kernel is orig.kernel  # immutable spec, shared
            assert clone.tid == orig.tid
            assert clone.deps_remaining == orig.deps_remaining
            assert clone.state is TaskState.PENDING
            # Dependent edges point into the clone, never the template.
            assert all(d in f.tasks for d in clone.dependents)
            assert [d.tid for d in clone.dependents] == [
                d.tid for d in orig.dependents
            ]
        f.validate()

    def test_fork_refuses_executed_template(self):
        g = build_workload("hd-small", scale=0.5, seed=3)
        g.roots()[0].mark_ready(0.0)
        with pytest.raises(WorkloadError):
            g.fork()

    def test_forks_are_independent(self):
        g = build_workload("hd-small", scale=0.5, seed=3)
        a, b = g.fork(), g.fork()
        a.roots()[0].mark_ready(0.0)
        assert b.roots()[0].state is TaskState.PENDING
        assert g.roots()[0].state is TaskState.PENDING


# ----------------------------------------------------------------------
# ForkCache
# ----------------------------------------------------------------------
class TestForkCache:
    def test_graph_key_covers_exactly_the_graph_inputs(self):
        base = JobSpec("hd-small", "GRWS")
        same_graph = [
            JobSpec("hd-small", "JOSS"),
            JobSpec("hd-small", "GRWS", seed=99),
            JobSpec("hd-small", "GRWS", repetition=3),
            JobSpec("hd-small", "GRWS", platform="jetson-tx2"),
        ]
        different_graph = [
            JobSpec("dp", "GRWS"),
            JobSpec("hd-small", "GRWS", scale=0.5),
            JobSpec("hd-small", "GRWS", workload_seed=4),
        ]
        key = ForkCache.graph_key(base)
        assert all(ForkCache.graph_key(s) == key for s in same_graph)
        assert all(ForkCache.graph_key(s) != key for s in different_graph)

    def test_cold_start_then_forks_and_pristine_template(self):
        cache = ForkCache()
        spec = JobSpec("hd-small", "GRWS", scale=0.5)
        first = cache.graph_for(spec)
        second = cache.graph_for(spec)
        assert (cache.cold_starts, cache.forks) == (1, 1)
        assert first is not second
        # Even the cold-start job got a fork; the template never leaves
        # the cache, so executing a returned graph can't poison it.
        template = cache._graphs[ForkCache.graph_key(spec)]
        assert template is not first and template is not second
        first.roots()[0].mark_ready(0.0)
        third = cache.graph_for(spec)
        assert all(t.state is TaskState.PENDING for t in third.tasks)

    def test_breakdown_memos_are_per_platform(self):
        cache = ForkCache()
        tx2 = cache.breakdowns("jetson-tx2")
        assert cache.breakdowns("jetson-tx2") is tx2
        assert cache.breakdowns("other") is not tx2
        cache.clear()
        assert cache.breakdowns("jetson-tx2") is not tx2


# ----------------------------------------------------------------------
# Golden A/B: serial sweeps
# ----------------------------------------------------------------------
def test_serial_sweep_identical_with_and_without_cache():
    spec = SweepSpec(["hd-small"], ["GRWS", "JOSS"], scales=(0.5,), repetitions=2)
    jobs = list(spec.jobs())
    result = run_sweep(spec)  # serial path forks by default
    assert not result.failures
    reference = [execute_job(job) for job in jobs]  # no cache: cold builds
    assert [m.to_dict() for m in result.metrics()] == reference
    t = result.telemetry
    assert t.cold_starts == 1  # one distinct graph key
    assert t.state_forks == len(jobs) - 1
    assert t.state_forks + t.cold_starts == t.done


def test_faulted_job_does_not_pollute_the_next_fork():
    campaign = FaultCampaign(
        seed=0,
        faults=(FaultSpec("dvfs-stuck", target="*", onset=0.0, duration=60.0),),
        name="stuck",
    )
    clean = JobSpec("hd-small", "JOSS", scale=0.5)
    faulted = JobSpec("hd-small", "JOSS", scale=0.5, faults=campaign)
    # Faulted first: the clean job's graph then forks from a template
    # the faulted run cold-started.
    result = run_sweep([faulted, clean])
    assert not result.failures
    by_hash = {o.job_hash: o.metrics.to_dict() for o in result.outcomes}
    assert by_hash[clean.job_hash] == execute_job(clean)
    assert by_hash[faulted.job_hash] == execute_job(faulted)
    assert by_hash[clean.job_hash] != by_hash[faulted.job_hash]
    assert result.telemetry.cold_starts == 1
    assert result.telemetry.state_forks == 1


# ----------------------------------------------------------------------
# Golden A/B: warm pool
# ----------------------------------------------------------------------
def test_pool_sweeps_identical_and_fork_counters_ride_back():
    spec = SweepSpec(["hd-small"], ["GRWS", "JOSS"], scales=(0.5,), repetitions=2)
    serial = run_sweep(spec)
    chunked = run_sweep(spec, workers=4, chunk_size=None)
    per_job = run_sweep(spec, workers=4, chunk_size=1)
    for result in (chunked, per_job):
        assert not result.failures
        assert [m.to_dict() for m in result.metrics()] == [
            m.to_dict() for m in serial.metrics()
        ]
        t = result.telemetry
        # Every executed job either forked or cold-started, in whichever
        # worker process it landed on.
        assert t.state_forks + t.cold_starts == t.done
    # The chunked sweep ran on a freshly forked pool: at least the first
    # job of some chunk had to build its template.
    assert chunked.telemetry.cold_starts >= 1
    # The per-job sweep ran third on the same warm pool: its workers'
    # process-level caches already held the template, so jobs that
    # landed on a previously-used worker forked instead of rebuilding.
    assert per_job.telemetry.warm_pool_hit is True
    assert per_job.telemetry.state_forks >= 1


def test_warm_workers_fork_across_sweeps():
    spec = SweepSpec(["hd-small"], ["GRWS"], scales=(0.5,), repetitions=4)
    first = run_sweep(spec, workers=2, chunk_size=1)
    second = run_sweep(spec, workers=2, chunk_size=1)
    assert not first.failures and not second.failures
    assert [m.to_dict() for m in second.metrics()] == [
        m.to_dict() for m in first.metrics()
    ]
    assert second.telemetry.warm_pool_hit is True
    # Both workers warmed their template during the first sweep, so the
    # second sweep never cold-starts.
    assert second.telemetry.cold_starts == 0
    assert second.telemetry.state_forks == second.telemetry.done


def test_pool_fault_campaign_identical_to_serial():
    campaign = FaultCampaign(
        seed=0,
        faults=(FaultSpec("dvfs-stuck", target="*", onset=0.0, duration=60.0),),
        name="stuck",
    )
    jobs = [
        JobSpec("hd-small", "JOSS", scale=0.5, faults=campaign),
        JobSpec("hd-small", "JOSS", scale=0.5),
        JobSpec("hd-small", "GRWS", scale=0.5, faults=campaign),
        JobSpec("hd-small", "GRWS", scale=0.5),
    ]
    serial = run_sweep(jobs)
    pooled = run_sweep(jobs, workers=2, chunk_size=1)
    assert not serial.failures and not pooled.failures
    serial_by_hash = {o.job_hash: o.metrics.to_dict() for o in serial.outcomes}
    pooled_by_hash = {o.job_hash: o.metrics.to_dict() for o in pooled.outcomes}
    assert pooled_by_hash == serial_by_hash


# ----------------------------------------------------------------------
# Telemetry surfaces
# ----------------------------------------------------------------------
def test_telemetry_summary_and_metrics_registry():
    t = SweepTelemetry(total=4, done=4, state_forks=3, cold_starts=1)
    summary = t.render_summary()
    assert "state sharing: 3 graph fork(s), 1 cold start(s)" in summary
    reg = MetricRegistry()
    t.publish_to(reg)
    assert reg.counter("sweep_state_forked").value() == 3
    assert reg.counter("sweep_cold_starts").value() == 1
    # Sweeps without fork accounting keep the summary line out entirely.
    assert "state sharing" not in SweepTelemetry(total=1).render_summary()
