"""Warm pool, chunked dispatch, non-blocking retries, leak accounting."""

from __future__ import annotations

import os
import time

import pytest

from repro.sweep import pool as pool_mod
from repro.sweep.cache import ResultCache
from repro.sweep.engine import run_sweep
from repro.sweep.spec import SweepSpec

from tests.sweep.test_engine import fake_metrics


@pytest.fixture(autouse=True)
def fresh_pool():
    """Every test starts and ends without a cached warm pool."""
    pool_mod.shutdown_warm_pool()
    yield
    pool_mod.shutdown_warm_pool()


# Top-level (picklable) worker bodies ----------------------------------
def _ok_worker(job):
    return fake_metrics(job)


def _slow_worker(job):
    time.sleep(1.5)
    return fake_metrics(job)


def _flaky_dp_slow_fb_worker(job):
    """dp fails on its first attempt (flag file), fb takes 0.15 s."""
    if job.workload == "dp":
        flag = os.environ["REPRO_TEST_FLAKY_FLAG"]
        if not os.path.exists(flag):
            open(flag, "w").close()
            raise IOError("transient dp failure")
    else:
        time.sleep(0.15)
    return fake_metrics(job)


# ----------------------------------------------------------------------
# Equivalence: serial vs per-job futures vs chunked
# ----------------------------------------------------------------------
def test_serial_parallel_chunked_equivalence(tmp_path):
    # One model-based scheduler so the suite-snapshot path is on, and
    # enough repetitions that auto mode actually forms chunks.
    spec = SweepSpec(["fb"], ["GRWS", "JOSS"], repetitions=2)
    caches = {
        name: ResultCache(tmp_path / name)
        for name in ("serial", "per-job", "chunked")
    }
    serial = run_sweep(spec, cache=caches["serial"])
    per_job = run_sweep(spec, workers=4, chunk_size=1, cache=caches["per-job"])
    chunked = run_sweep(spec, workers=4, chunk_size=None, cache=caches["chunked"])
    for result in (serial, per_job, chunked):
        assert not result.failures
    base = [m.to_dict() for m in serial.metrics()]
    assert [m.to_dict() for m in per_job.metrics()] == base
    assert [m.to_dict() for m in chunked.metrics()] == base
    # Identical cache entries too: same hashes, same metrics payloads.
    for job in spec:
        entries = {
            name: cache.get(job.job_hash) for name, cache in caches.items()
        }
        assert all(e is not None for e in entries.values())
        payloads = {name: e["metrics"] for name, e in entries.items()}
        assert payloads["per-job"] == payloads["serial"]
        assert payloads["chunked"] == payloads["serial"]


# ----------------------------------------------------------------------
# Warm pool reuse
# ----------------------------------------------------------------------
def test_warm_pool_reused_with_zero_suite_loads(tmp_path, monkeypatch):
    log = tmp_path / "suite-loads.log"
    monkeypatch.setenv(pool_mod.SUITE_LOAD_LOG_ENV, str(log))
    # Suite snapshots land in an isolated cache root; the result cache
    # stays off so the second sweep re-executes (and would re-load
    # suites if the workers were cold).
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    spec = SweepSpec(["fb"], ["JOSS"], repetitions=2)

    first = run_sweep(spec, workers=2)
    assert not first.failures
    assert first.telemetry.warm_pool_hit is False
    loads_after_first = len(log.read_text().splitlines())
    # Fork-time preloading: each worker loads the one snapshot once.
    assert 1 <= loads_after_first <= 2
    pool = pool_mod.active_pool()
    assert pool is not None and pool.warmed

    second = run_sweep(spec, workers=2)
    assert not second.failures
    assert second.telemetry.warm_pool_hit is True
    assert pool_mod.active_pool() is pool  # same pool, not re-forked
    # The whole point: zero suite loads on the second sweep.
    assert len(log.read_text().splitlines()) == loads_after_first
    assert [m.to_dict() for m in second.metrics()] == [
        m.to_dict() for m in first.metrics()
    ]


def test_worker_count_change_recreates_pool():
    spec = SweepSpec(["fb"], ["GRWS"], repetitions=2)
    run_sweep(spec, workers=2, worker_fn=_ok_worker)
    pool = pool_mod.active_pool()
    assert pool is not None and pool.workers == 2
    result = run_sweep(spec, workers=3, worker_fn=_ok_worker)
    assert result.telemetry.warm_pool_hit is False
    assert pool_mod.active_pool() is not pool
    assert pool_mod.active_pool().workers == 3


def test_cold_pool_is_not_cached():
    spec = SweepSpec(["fb"], ["GRWS"], repetitions=2)
    result = run_sweep(spec, workers=2, worker_fn=_ok_worker, reuse_pool=False)
    assert not result.failures
    assert result.telemetry.warm_pool_hit is False
    assert pool_mod.active_pool() is None


# ----------------------------------------------------------------------
# Chunked dispatch
# ----------------------------------------------------------------------
def test_auto_chunking_batches_fine_grained_jobs():
    spec = SweepSpec(["fb"], ["GRWS"], repetitions=24)
    result = run_sweep(spec, workers=2, worker_fn=_ok_worker)
    t = result.telemetry
    assert t.done == 24 and not result.failures
    # Near-free jobs must coalesce: far fewer dispatches than jobs.
    assert t.chunks < t.done
    assert t.chunk_size > 1
    assert t.bytes_serialized > 0
    assert t.dispatch_overhead >= 0.0
    assert "dispatch:" in t.render_summary()


def test_fixed_chunk_size_one_is_per_job():
    spec = SweepSpec(["fb"], ["GRWS"], repetitions=6)
    result = run_sweep(spec, workers=2, worker_fn=_ok_worker, chunk_size=1)
    t = result.telemetry
    assert t.chunks == 6 and t.chunk_size == 1


def test_failure_inside_chunk_is_retried_individually(monkeypatch, tmp_path):
    flag = tmp_path / "flaky.flag"
    monkeypatch.setenv("REPRO_TEST_FLAKY_FLAG", str(flag))
    spec = SweepSpec(["fb", "dp"], ["GRWS"], repetitions=4)
    # Force everything into big chunks so dp's first failure happens
    # inside a chunk shared with healthy fb jobs.
    result = run_sweep(
        spec, workers=2, worker_fn=_flaky_dp_slow_fb_worker,
        chunk_size=8, retries=1, backoff=0.0,
    )
    assert not result.failures
    assert len(result.outcomes) == 8
    assert result.telemetry.retries == 1
    retried = [o for o in result.outcomes if o.attempts > 1]
    assert len(retried) == 1 and retried[0].job.workload == "dp"


# ----------------------------------------------------------------------
# Non-blocking retry backoff
# ----------------------------------------------------------------------
def test_retry_backoff_does_not_delay_other_completions(monkeypatch, tmp_path):
    flag = tmp_path / "flaky.flag"
    monkeypatch.setenv("REPRO_TEST_FLAKY_FLAG", str(flag))
    spec = SweepSpec(["dp", "fb"], ["GRWS"], repetitions=1)
    started = time.perf_counter()
    done_at: dict[str, float] = {}

    def hook(event, job, telemetry):
        if event == "done":
            done_at[job.workload] = time.perf_counter() - started

    result = run_sweep(
        spec, workers=2, worker_fn=_flaky_dp_slow_fb_worker,
        chunk_size=1, retries=1, backoff=0.6, progress=hook,
    )
    assert not result.failures
    # dp failed instantly and sat out a 0.6 s backoff; fb (0.15 s of
    # work) must be recorded long before that backoff expires — the
    # dispatcher no longer sleeps inline on retries.
    assert done_at["fb"] < 0.45
    assert done_at["dp"] >= 0.55
    dp = [o for o in result.outcomes if o.job.workload == "dp"][0]
    assert dp.attempts == 2


# ----------------------------------------------------------------------
# Timeout leak accounting
# ----------------------------------------------------------------------
def test_timed_out_jobs_count_as_leaked_and_recycle_the_pool():
    spec = SweepSpec(["fb"], ["GRWS"], repetitions=2)
    result = run_sweep(spec, workers=2, worker_fn=_slow_worker, timeout=0.3)
    t = result.telemetry
    assert len(result.failures) == 2
    assert all(f.kind == "timeout" for f in result.failures)
    assert t.timeout_leaked == 2
    assert "timeout leaks" in t.render_summary()
    # A pool with leaked (still-running) workers must not be reused.
    assert pool_mod.active_pool() is None
