"""ResultCache under concurrent writers (atomicity + shard locking).

Two processes hammer the same hash shard with interleaved writes and
reads; every read must observe either nothing or a byte-complete valid
entry — never a torn file — and every written key must survive.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os

from repro.sweep.cache import ResultCache
from repro.sweep.spec import SCHEMA_VERSION, JobSpec

#: All workers write into this one shard (hash prefix "ab").
SHARD_PREFIX = "ab"
KEYS_PER_WORKER = 40


def _spec() -> JobSpec:
    return JobSpec(workload="hd-small", scheduler="GRWS")


def _hash_for(worker: int, i: int) -> str:
    # Same 2-char prefix => same shard directory and same shard lock.
    return f"{SHARD_PREFIX}{worker}{i:04d}" + "0" * 57


def _writer(cache_dir: str, worker: int, rounds: int) -> None:
    cache = ResultCache(cache_dir)
    spec = _spec()
    for r in range(rounds):
        for i in range(KEYS_PER_WORKER):
            h = _hash_for(worker, i)
            cache.put(spec, h, {"worker": worker, "round": r, "i": i}, 0.1)
            # Read back a key the *other* worker owns: may be absent
            # (None) but must never be torn/corrupted.
            other = _hash_for(1 - worker, i)
            entry = cache.get(other)
            if entry is not None:
                assert entry["metrics"]["i"] == i, "torn read"
    assert cache.stats.corrupted == 0, "observed a torn/corrupted entry"


def test_two_processes_same_shard_stress(tmp_path):
    ctx = mp.get_context("fork") if os.name == "posix" else mp.get_context()
    procs = [
        ctx.Process(target=_writer, args=(str(tmp_path), w, 5))
        for w in (0, 1)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
        assert p.exitcode == 0, "writer process failed (torn read or crash)"

    # Every key from both workers survived, fully valid.
    cache = ResultCache(tmp_path)
    for worker in (0, 1):
        for i in range(KEYS_PER_WORKER):
            entry = cache.get(_hash_for(worker, i))
            assert entry is not None
            assert entry["schema_version"] == SCHEMA_VERSION
            assert entry["metrics"]["worker"] == worker
    assert cache.stats.corrupted == 0


def test_corrupted_entry_is_dropped_under_lock(tmp_path):
    cache = ResultCache(tmp_path)
    h = _hash_for(0, 0)
    cache.put(_spec(), h, {"ok": 1}, 0.1)
    path = cache.path_for(h)
    path.write_text("{not json")
    assert cache.get(h) is None
    assert cache.stats.corrupted == 1
    assert not path.exists(), "corrupted entry must be removed"
    # A fresh write after the removal is served normally again.
    cache.put(_spec(), h, {"ok": 2}, 0.1)
    assert cache.get(h)["metrics"] == {"ok": 2}


def test_stale_schema_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    h = _hash_for(0, 1)
    path = cache.path_for(h)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({
        "schema_version": SCHEMA_VERSION - 1,
        "job": _spec().to_dict(),
        "elapsed": 0.1,
        "metrics": {"old": True},
    }))
    assert cache.get(h) is None


def test_lock_files_do_not_pollute_cache_accounting(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(_spec(), _hash_for(0, 2), {"ok": 1}, 0.1)
    assert (cache.results_dir / SHARD_PREFIX / ".lock").exists()
    assert len(cache) == 1  # the .lock file is not an entry
    assert cache.clear() == 1


def test_shard_lock_is_reentrant_across_instances(tmp_path):
    # Two cache instances (as two threads/processes would hold) can
    # both mutate different shards without deadlock, and the same
    # shard sequentially.
    a, b = ResultCache(tmp_path), ResultCache(tmp_path)
    with a.shard_lock("ab" + "0" * 62):
        with b.shard_lock("cd" + "0" * 62):
            pass  # different shards: no interaction
    with a.shard_lock("ab" + "0" * 62):
        pass  # released correctly above
