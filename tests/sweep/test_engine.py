"""Sweep engine: caching, parallel/serial equivalence, failure paths."""

from __future__ import annotations

import time

import pytest

from repro.errors import SweepError
from repro.sweep.cache import ResultCache
from repro.sweep.engine import run_sweep
from repro.sweep.spec import JobSpec, SweepSpec

GRWS_ONLY = SweepSpec(["fb"], ["GRWS"], repetitions=1)


def fake_metrics(job: JobSpec, makespan: float = 1.0) -> dict:
    return {
        "scheduler": job.scheduler,
        "workload": job.workload,
        "makespan": makespan,
        "cpu_energy": 1.0,
        "mem_energy": 0.5,
        "cpu_energy_exact": 1.0,
        "mem_energy_exact": 0.5,
        "tasks_executed": 10,
        "steals": 1,
        "cluster_freq_transitions": 2,
        "memory_freq_transitions": 1,
        "sampling_time": 0.0,
        "extras": {},
        "per_kernel": {},
    }


# Top-level (picklable) worker bodies for process-pool tests ------------
def _ok_worker(job: JobSpec) -> dict:
    return fake_metrics(job)


def _failing_worker(job: JobSpec) -> dict:
    if job.workload == "dp":
        raise RuntimeError("boom")
    return fake_metrics(job)


def _slow_worker(job: JobSpec) -> dict:
    time.sleep(1.5)
    return fake_metrics(job)


# ----------------------------------------------------------------------
# Caching
# ----------------------------------------------------------------------
def test_cache_hit_skips_execution(tmp_path):
    executed = []

    def worker(job):
        executed.append(job.job_hash)
        return fake_metrics(job)

    cold = run_sweep(GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=worker)
    assert cold.telemetry.done == 1 and cold.telemetry.cache_hits == 0
    warm = run_sweep(GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=worker)
    assert warm.telemetry.done == 0 and warm.telemetry.cache_hits == 1
    assert warm.telemetry.hit_rate == 1.0
    assert warm.telemetry.time_saved > 0
    assert len(executed) == 1  # second sweep never ran the job
    assert warm.outcomes[0].cached
    assert [m.to_dict() for m in warm.metrics()] == [
        m.to_dict() for m in cold.metrics()
    ]


def test_spec_change_invalidates(tmp_path):
    run_sweep(GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=_ok_worker)
    changed = SweepSpec(["fb"], ["GRWS"], repetitions=1, seed=99)
    again = run_sweep(changed, cache=ResultCache(tmp_path), worker_fn=_ok_worker)
    assert again.telemetry.cache_hits == 0 and again.telemetry.done == 1


def test_corrupted_entry_recovers_by_re_running(tmp_path):
    cache = ResultCache(tmp_path)
    run_sweep(GRWS_ONLY, cache=cache, worker_fn=_ok_worker)
    job = GRWS_ONLY.jobs()[0]
    cache.path_for(job.job_hash).write_text("not json at all")
    redo = run_sweep(GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=_ok_worker)
    assert redo.telemetry.cache_hits == 0 and redo.telemetry.done == 1
    assert redo.telemetry.cache_corrupted == 1
    # ...and the re-run repaired the entry.
    final = run_sweep(GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=_ok_worker)
    assert final.telemetry.cache_hits == 1


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
def test_one_failing_job_does_not_crash_the_sweep():
    spec = SweepSpec(["fb", "dp"], ["GRWS"], repetitions=1)
    result = run_sweep(spec, worker_fn=_failing_worker, retries=0)
    assert len(result.outcomes) == 1
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure.kind == "error"
    assert "boom" in failure.error
    assert failure.job.workload == "dp"
    with pytest.raises(SweepError, match="boom"):
        result.raise_on_failure()


def test_retry_recovers_from_transient_failure():
    attempts = []

    def flaky(job):
        attempts.append(1)
        if len(attempts) < 3:
            raise IOError("transient")
        return fake_metrics(job)

    result = run_sweep(GRWS_ONLY, worker_fn=flaky, retries=2, backoff=0.0)
    assert not result.failures
    assert result.outcomes[0].attempts == 3
    assert result.telemetry.retries == 2


def test_retries_exhausted_becomes_structured_failure():
    def always_fails(job):
        raise IOError("still broken")

    result = run_sweep(GRWS_ONLY, worker_fn=always_fails, retries=2, backoff=0.0)
    assert not result.outcomes
    assert result.failures[0].attempts == 3
    assert result.telemetry.failed == 1


def test_serial_timeout_is_a_structured_failure():
    def slow(job):
        time.sleep(0.3)
        return fake_metrics(job)

    result = run_sweep(GRWS_ONLY, worker_fn=slow, timeout=0.05, retries=3)
    assert not result.outcomes
    failure = result.failures[0]
    assert failure.kind == "timeout"
    assert failure.attempts == 1  # timeouts are not retried
    assert "0.05" in failure.error


# ----------------------------------------------------------------------
# Parallel execution
# ----------------------------------------------------------------------
def test_parallel_timeout_and_survivors():
    spec = SweepSpec(["fb"], ["GRWS"], repetitions=2)
    result = run_sweep(spec, workers=2, worker_fn=_slow_worker, timeout=0.3)
    assert len(result.failures) == 2
    assert all(f.kind == "timeout" for f in result.failures)


def test_parallel_failure_is_contained():
    spec = SweepSpec(["fb", "dp"], ["GRWS"], repetitions=1)
    result = run_sweep(spec, workers=2, worker_fn=_failing_worker, retries=1)
    assert len(result.outcomes) == 1
    assert len(result.failures) == 1
    assert result.failures[0].attempts == 2  # retried once in the pool


def test_parallel_matches_serial_bit_for_bit(tmp_path):
    # A fig8-style grid: multiple schedulers (one model-based, so the
    # suite-snapshot path is exercised) over repeated runs.
    spec = SweepSpec(["fb"], ["GRWS", "JOSS"], repetitions=2)
    serial = run_sweep(spec)
    parallel = run_sweep(spec, workers=4, cache=ResultCache(tmp_path))
    assert not serial.failures and not parallel.failures
    assert [m.to_dict() for m in parallel.metrics()] == [
        m.to_dict() for m in serial.metrics()
    ]
    t = parallel.telemetry
    assert t.workers == 4 and t.done == len(spec)
    assert t.exec_time > 0 and t.wall_time > 0
    assert "speedup" in t.render_summary()


def test_platform_factory_override_is_serial_only():
    from repro.hw.platform import symmetric_platform

    with pytest.raises(SweepError, match="serial-only"):
        run_sweep(GRWS_ONLY, workers=2, platform_factory=symmetric_platform)


def test_progress_hook_sees_lifecycle(tmp_path):
    events = []
    run_sweep(
        GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=_ok_worker,
        progress=lambda ev, job, t: events.append(ev),
    )
    assert events == ["queued", "start", "done"]
    events.clear()
    run_sweep(
        GRWS_ONLY, cache=ResultCache(tmp_path), worker_fn=_ok_worker,
        progress=lambda ev, job, t: events.append(ev),
    )
    assert events == ["queued", "hit"]
