"""Result cache: hits, misses, invalidation, corruption recovery."""

from __future__ import annotations

import json

from repro.sweep.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.sweep.spec import SCHEMA_VERSION, JobSpec

JOB = JobSpec("fb", "GRWS")
METRICS = {"scheduler": "GRWS", "workload": "fb", "makespan": 0.5}


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path)
    h = JOB.job_hash
    assert cache.get(h) is None
    cache.put(JOB, h, METRICS, elapsed=1.25)
    entry = cache.get(h)
    assert entry["metrics"] == METRICS
    assert entry["elapsed"] == 1.25
    assert entry["job"]["workload"] == "fb"
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert len(cache) == 1


def test_spec_change_misses(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(JOB, JOB.job_hash, METRICS, elapsed=0.1)
    changed = JobSpec("fb", "GRWS", seed=99)
    assert cache.get(changed.job_hash) is None


def test_corrupted_entry_is_dropped_and_re_missed(tmp_path):
    cache = ResultCache(tmp_path)
    h = JOB.job_hash
    cache.put(JOB, h, METRICS, elapsed=0.1)
    cache.path_for(h).write_text("{ truncated…")
    assert cache.get(h) is None
    assert cache.stats.corrupted == 1
    assert not cache.path_for(h).exists()  # removed for transparent re-run


def test_wrong_schema_version_is_invalidated(tmp_path):
    cache = ResultCache(tmp_path)
    h = JOB.job_hash
    cache.put(JOB, h, METRICS, elapsed=0.1)
    entry = json.loads(cache.path_for(h).read_text())
    entry["schema_version"] = SCHEMA_VERSION + 1
    cache.path_for(h).write_text(json.dumps(entry))
    assert cache.get(h) is None
    assert cache.stats.corrupted == 1


def test_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(JOB, JOB.job_hash, METRICS, elapsed=0.1)
    assert cache.clear() == 1
    assert len(cache) == 0


def test_default_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "alt"))
    assert default_cache_dir() == tmp_path / "alt"
    assert ResultCache().root == tmp_path / "alt"


def test_suite_snapshot_written_once(tmp_path):
    cache = ResultCache(tmp_path)
    path = cache.ensure_suite("jetson-tx2", 0)
    assert path.is_file()
    stamp = path.stat().st_mtime_ns
    assert cache.ensure_suite("jetson-tx2", 0) == path
    assert path.stat().st_mtime_ns == stamp  # not re-profiled


def test_get_many_mixed_hits_and_misses(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [JobSpec("fb", "GRWS", seed=s) for s in (1, 2, 3)]
    for job in jobs[:2]:
        cache.put(job, job.job_hash, METRICS, elapsed=0.1)
    hashes = [j.job_hash for j in jobs]
    out = cache.get_many(hashes)
    assert set(out) == {hashes[0], hashes[1]}
    assert out[hashes[0]]["metrics"] == METRICS
    assert cache.stats.hits == 2 and cache.stats.misses == 1


def test_get_many_empty_cache_is_all_misses(tmp_path):
    cache = ResultCache(tmp_path)
    hashes = [JobSpec("fb", "GRWS", seed=s).job_hash for s in range(5)]
    assert cache.get_many(hashes) == {}
    assert cache.stats.misses == 5 and cache.stats.hits == 0


def test_get_many_drops_corrupted_entries(tmp_path):
    cache = ResultCache(tmp_path)
    good = JobSpec("fb", "GRWS", seed=1)
    bad = JobSpec("fb", "GRWS", seed=2)
    for job in (good, bad):
        cache.put(job, job.job_hash, METRICS, elapsed=0.1)
    cache.path_for(bad.job_hash).write_text("{ truncated…")
    out = cache.get_many([good.job_hash, bad.job_hash])
    assert set(out) == {good.job_hash}
    assert cache.stats.corrupted == 1
    assert not cache.path_for(bad.job_hash).exists()


def test_get_many_deduplicates_input_hashes(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put(JOB, JOB.job_hash, METRICS, elapsed=0.1)
    out = cache.get_many([JOB.job_hash, JOB.job_hash, JOB.job_hash])
    assert set(out) == {JOB.job_hash}
    assert cache.stats.hits == 1 and cache.stats.misses == 0
