"""Tests for the kernel-governor baseline schedulers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, TaskGraph
from repro.schedulers import GovernorScheduler, make_scheduler

WORK = KernelSpec("g.work", w_comp=0.15, w_bytes=0.004)
STREAM = KernelSpec("g.stream", w_comp=0.005, w_bytes=0.03)


def graph(kernel=WORK, waves=12, width=6):
    g = TaskGraph("gov")
    prev = None
    for _ in range(waves):
        layer = [g.add_task(kernel, deps=[prev] if prev else None) for _ in range(width)]
        prev = g.add_task(kernel, deps=layer)
    return g


def run(sched, kernel=WORK, seed=5):
    ex = Executor(jetson_tx2(), sched, seed=seed)
    return ex, ex.run(graph(kernel))


class TestStaticPolicies:
    def test_performance_pins_max(self):
        ex, m = run(GovernorScheduler("performance"))
        assert all(cl.freq == cl.opps.max for cl in ex.platform.clusters)
        assert ex.platform.memory.freq == ex.platform.memory.opps.max

    def test_powersave_pins_min(self):
        ex, m = run(GovernorScheduler("powersave"))
        assert all(cl.freq == cl.opps.min for cl in ex.platform.clusters)
        assert ex.platform.memory.freq == ex.platform.memory.opps.min

    def test_powersave_slower_cheaper_cpu(self):
        _, m_perf = run(GovernorScheduler("performance"))
        _, m_save = run(GovernorScheduler("powersave"))
        assert m_save.makespan > m_perf.makespan * 2
        assert m_save.cpu_energy < m_perf.cpu_energy


class TestOndemand:
    def test_frequencies_follow_load(self):
        ex, m = run(GovernorScheduler("ondemand", period_s=0.005))
        # The governor actuated and the event loop drained.
        assert m.cluster_freq_transitions > 0
        assert ex.sim.pending_count() == 0

    def test_memory_governor_reacts_to_bandwidth(self):
        ex, m = run(GovernorScheduler("ondemand", period_s=0.005), kernel=STREAM)
        # Streaming load keeps memory near max; after completion it may
        # have begun stepping down, but transitions happened.
        assert m.memory_freq_transitions >= 1

    def test_cheaper_than_performance_on_bursty_load(self):
        # A serial chain leaves most cores idle: ondemand steps those
        # clusters down and saves energy vs the pinned-max policy.
        def chain():
            g = TaskGraph("chain")
            prev = None
            for _ in range(40):
                prev = g.add_task(WORK, deps=[prev] if prev else None)
            return g

        ex1 = Executor(jetson_tx2(), GovernorScheduler("performance"), seed=5)
        m_perf = ex1.run(chain())
        ex2 = Executor(
            jetson_tx2(), GovernorScheduler("ondemand", period_s=0.005), seed=5
        )
        m_od = ex2.run(chain())
        assert m_od.total_energy < m_perf.total_energy


class TestConstruction:
    def test_registry_names(self):
        assert make_scheduler("gov-ondemand").policy == "ondemand"
        assert make_scheduler("gov-powersave").name == "gov-powersave"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            GovernorScheduler("schedutil")  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            make_scheduler("gov-schedutil")
