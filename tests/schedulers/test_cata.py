"""Tests for the CATA-style criticality-aware baseline."""

from __future__ import annotations

import pytest

from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, TaskGraph
from repro.schedulers import make_scheduler
from repro.schedulers.cata import CataScheduler

K = KernelSpec("ct.k", w_comp=0.1, w_bytes=0.002)


def chain_with_fluff(chain_len=12, fluff=3):
    """One long chain (the critical path) plus short offshoots."""
    g = TaskGraph("cp")
    prev = None
    for _ in range(chain_len):
        prev = g.add_task(K, deps=[prev] if prev else None)
        for _ in range(fluff):
            g.add_task(K, deps=[prev])  # leaf offshoots: zero criticality
    return g


class TestCriticality:
    def test_critical_chain_goes_fast(self):
        sched = CataScheduler(threshold=0.5)
        ex = Executor(jetson_tx2(), sched, seed=3)
        m = ex.run(chain_with_fluff())
        assert sched.critical_tasks > 0
        assert sched.non_critical_tasks > 0
        # Offshoot leaves vastly outnumber chain tasks.
        assert sched.non_critical_tasks > sched.critical_tasks

    def test_bottom_levels_correct(self):
        g = TaskGraph("bl")
        a = g.add_task(K)
        b = g.add_task(K, deps=[a])
        c = g.add_task(K, deps=[b])
        leaf = g.add_task(K, deps=[a])
        sched = CataScheduler()
        sched.on_run_begin()
        assert sched._bottom_level(c) == 1
        assert sched._bottom_level(leaf) == 1
        assert sched._bottom_level(b) == 2
        assert sched._bottom_level(a) == 3

    def test_deep_chain_no_recursion_error(self):
        g = TaskGraph("deep")
        prev = None
        for _ in range(5000):
            prev = g.add_task(K, deps=[prev] if prev else None)
        sched = CataScheduler()
        sched.on_run_begin()
        assert sched._bottom_level(g.tasks[0]) == 5000

    def test_never_throttles_memory(self):
        ex = Executor(jetson_tx2(), CataScheduler(), seed=3)
        m = ex.run(chain_with_fluff())
        assert m.memory_freq_transitions == 0

    def test_saves_energy_on_critical_path_workload(self):
        """With abundant slack off the critical path, CATA beats GRWS."""
        from repro.schedulers import GrwsScheduler

        m_grws = Executor(jetson_tx2(), GrwsScheduler(), seed=3).run(
            chain_with_fluff()
        )
        m_cata = Executor(jetson_tx2(), CataScheduler(), seed=3).run(
            chain_with_fluff()
        )
        assert m_cata.total_energy < m_grws.total_energy
        # ...without tanking the makespan (the chain still runs fast).
        assert m_cata.makespan < m_grws.makespan * 1.8

    def test_registry(self):
        s = make_scheduler("CATA", threshold=0.9)
        assert isinstance(s, CataScheduler)
        assert s.threshold == pytest.approx(0.9)
