"""Tests for the baseline schedulers (GRWS, ERASE, Aequitas, STEER)."""

from __future__ import annotations

import pytest

from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskGraph
from repro.schedulers import (
    AequitasScheduler,
    EraseScheduler,
    GrwsScheduler,
    SteerScheduler,
)

COMPUTE = KernelSpec("compute", w_comp=0.5, w_bytes=0.004, type_affinity={"denver": 1.5})
MEMORY = KernelSpec("memory", w_comp=0.01, w_bytes=0.05)


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def mixed_graph(n_waves=20, width=6):
    g = TaskGraph("mixed")
    prev = None
    for _ in range(n_waves):
        layer = [
            g.add_task(COMPUTE if j % 2 else MEMORY, deps=[prev] if prev else None)
            for j in range(width)
        ]
        prev = g.add_task(COMPUTE, deps=layer)
    return g


def run(sched, seed=7):
    ex = Executor(jetson_tx2(), sched, seed=seed)
    return ex, ex.run(mixed_graph())


class TestGrws:
    def test_no_dvfs_no_moldability(self):
        ex, m = run(GrwsScheduler())
        assert m.cluster_freq_transitions == 0
        assert m.memory_freq_transitions == 0
        for ks in m.per_kernel.values():
            assert all(key.endswith("x1") for key in ks.placements)

    def test_steals_globally(self):
        ex, m = run(GrwsScheduler())
        keys = set()
        for ks in m.per_kernel.values():
            keys.update(ks.placements)
        assert any(k.startswith("denver") for k in keys)
        assert any(k.startswith("a57") for k in keys)


class TestErase:
    def test_no_dvfs_but_moldable(self, suite):
        ex, m = run(EraseScheduler(suite))
        assert m.cluster_freq_transitions == 0
        assert m.memory_freq_transitions == 0
        assert "decisions" in m.extras
        assert set(m.extras["decisions"]) == {"compute", "memory"}

    def test_compute_kernel_prefers_denver(self, suite):
        """ERASE's CPU-energy estimate sends ILP-heavy work to Denver
        (the paper's BMOD analysis)."""
        sched = EraseScheduler(suite)
        run(sched)
        assert sched.decisions["compute"][0] == "denver"

    def test_power_table_from_dataset(self, suite):
        from repro.profiling import PlatformProfiler

        ds = PlatformProfiler(
            jetson_tx2, seed=0, synthetic_count=5,
            cpu_train_freqs=[1.110, 2.040], mem_train_freqs=[1.866],
        ).run()
        sched = EraseScheduler(suite, dataset=ds)
        assert set(sched._power_table) == set(suite.config_keys())
        assert all(v > 0 for v in sched._power_table.values())

    def test_saves_cpu_energy_vs_grws(self, suite):
        _, m_grws = run(GrwsScheduler())
        _, m_erase = run(EraseScheduler(suite))
        assert m_erase.cpu_energy < m_grws.cpu_energy


class TestAequitas:
    def test_throttles_cluster_frequencies(self):
        ex, m = run(AequitasScheduler(time_slice_s=0.02))
        assert m.cluster_freq_transitions > 0
        assert m.memory_freq_transitions == 0  # no memory knob

    def test_no_moldability(self):
        _, m = run(AequitasScheduler())
        for ks in m.per_kernel.values():
            assert all(key.endswith("x1") for key in ks.placements)

    def test_timer_stops_with_workload(self):
        ex, m = run(AequitasScheduler(time_slice_s=0.02))
        # Simulation drained: no timer events left pending.
        assert ex.sim.pending_count() == 0

    def test_reduces_cpu_energy_vs_grws(self):
        _, m_grws = run(GrwsScheduler())
        _, m_aeq = run(AequitasScheduler())
        assert m_aeq.cpu_energy < m_grws.cpu_energy


class TestSteer:
    def test_memory_knob_untouched(self, suite):
        ex, m = run(SteerScheduler(suite))
        assert ex.platform.memory.freq == ex.platform.memory.opps.max
        assert m.memory_freq_transitions == 0

    def test_throttles_cpu(self, suite):
        _, m = run(SteerScheduler(suite))
        assert m.cluster_freq_transitions > 0

    def test_reduces_cpu_energy_but_joss_wins_total(self, suite):
        from repro.core import JossScheduler

        _, m_grws = run(GrwsScheduler())
        _, m_steer = run(SteerScheduler(suite))
        _, m_joss = run(JossScheduler(suite))
        assert m_steer.cpu_energy < m_grws.cpu_energy
        # The paper's core claim at workload level.
        assert m_joss.total_energy < m_steer.total_energy
