"""Tests for the scheduler registry."""

from __future__ import annotations

import pytest

from repro.core.goals import MaxPerformance, MinCpuEnergy, PerformanceConstraint
from repro.errors import ConfigurationError
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.schedulers import make_scheduler, scheduler_names


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def test_names_cover_paper_lineup():
    names = scheduler_names()
    for expected in ("GRWS", "ERASE", "Aequitas", "STEER", "JOSS",
                     "JOSS_NoMemDVFS", "JOSS_MAXP"):
        assert expected in names


def test_simple_schedulers_need_no_suite():
    assert make_scheduler("GRWS").name == "GRWS"
    assert make_scheduler("Aequitas").name == "Aequitas"


def test_model_based_require_suite():
    with pytest.raises(ConfigurationError):
        make_scheduler("JOSS")
    with pytest.raises(ConfigurationError):
        make_scheduler("STEER")


def test_joss_variants(suite):
    joss = make_scheduler("JOSS", suite)
    assert joss.use_memory_dvfs
    nomem = make_scheduler("JOSS_NoMemDVFS", suite)
    assert not nomem.use_memory_dvfs
    maxp = make_scheduler("JOSS_MAXP", suite)
    assert isinstance(maxp.goal, MaxPerformance)
    steer = make_scheduler("STEER", suite)
    assert isinstance(steer.goal, MinCpuEnergy)
    assert not steer.use_memory_dvfs


def test_speedup_pattern(suite):
    s = make_scheduler("JOSS_1.4x", suite)
    assert isinstance(s.goal, PerformanceConstraint)
    assert s.goal.speedup == pytest.approx(1.4)
    s2 = make_scheduler("joss_2x", suite)
    assert s2.goal.speedup == pytest.approx(2.0)


def test_case_insensitive(suite):
    assert make_scheduler("grws").name == "GRWS"
    assert make_scheduler("Joss", suite).name == "JOSS"


def test_unknown_rejected(suite):
    with pytest.raises(ConfigurationError):
        make_scheduler("CFS", suite)
