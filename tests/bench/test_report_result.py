"""Tests for table rendering and result persistence."""

from __future__ import annotations

from repro.bench.report import bar, format_table
from repro.bench.result import ExperimentResult


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["bb", 2.0]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text
        assert "2.000" in text
        assert len(lines) == 4

    def test_custom_float_format(self):
        text = format_table(["x"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_wide_cells_expand_columns(self):
        text = format_table(["h"], [["a-very-long-cell"]])
        header, sep, row = text.splitlines()
        assert len(sep) == len(row)


class TestBar:
    def test_proportions(self):
        assert bar(5, 10, width=10) == "#####"
        assert bar(10, 10, width=10) == "#" * 10
        assert bar(0, 10) == ""

    def test_clamped(self):
        assert bar(20, 10, width=10) == "#" * 10
        assert bar(5, 0) == ""


class TestExperimentResult:
    def test_save_roundtrip(self, tmp_path):
        r = ExperimentResult(
            name="demo",
            title="Demo artefact",
            rows=[{"a": 1}],
            text="a  b\n1  2",
            summary={"metric": 0.5},
        )
        path = r.save(tmp_path)
        content = path.read_text()
        assert "Demo artefact" in content
        assert "metric = 0.5" in content
        assert path.name == "demo.txt"
