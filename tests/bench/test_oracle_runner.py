"""Tests for the configuration explorer and the bench runner."""

from __future__ import annotations

import pytest

from repro.bench.oracle import ConfigurationExplorer
from repro.bench.runner import BenchConfig, run_averaged, run_matrix, run_one
from repro.errors import ConfigurationError
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2

KERNEL = KernelSpec("probe", w_comp=0.1, w_bytes=0.01)


class TestExplorer:
    def test_measure_basics(self):
        ex = ConfigurationExplorer(jetson_tx2, seed=0)
        p = ex.measure(KERNEL, "a57", 1, 2.04, 1.866, tasks=2)
        assert p.time > 0
        assert p.cpu_power > 0 and p.mem_power > 0
        assert p.total_energy == pytest.approx(p.cpu_energy + p.mem_energy)

    def test_lower_freq_slower(self):
        ex = ConfigurationExplorer(jetson_tx2, seed=0)
        fast = ex.measure(KERNEL, "a57", 1, 2.04, 1.866)
        slow = ex.measure(KERNEL, "a57", 1, 0.499, 1.866)
        assert slow.time > fast.time

    def test_moldable_measurement_faster(self):
        ex = ConfigurationExplorer(jetson_tx2, seed=0)
        one = ex.measure(KERNEL, "a57", 1, 2.04, 1.866)
        four = ex.measure(KERNEL, "a57", 4, 2.04, 1.866)
        assert four.time < one.time

    def test_invalid_args_rejected(self):
        ex = ConfigurationExplorer(jetson_tx2, seed=0)
        with pytest.raises(ConfigurationError):
            ex.measure(KERNEL, "a57", 8, 2.04, 1.866)
        with pytest.raises(ConfigurationError):
            ex.measure(KERNEL, "a57", 1, 2.04, 1.866, tasks=0)

    def test_sweep_covers_resource_configs(self):
        ex = ConfigurationExplorer(jetson_tx2, seed=0)
        pts = ex.sweep(KERNEL, f_c_values=[2.04], f_m_values=[1.866], tasks=1)
        assert len(pts) == 5  # denver x{1,2}, a57 x{1,2,4}

    def test_config_str(self):
        ex = ConfigurationExplorer(jetson_tx2, seed=0)
        p = ex.measure(KERNEL, "denver", 2, 1.11, 0.8)
        assert p.config_str() == "<denver, 2, 1.11, 0.800>"


class TestRunner:
    def test_run_one(self):
        m = run_one("mm-256", "GRWS", BenchConfig(repetitions=1))
        assert m.tasks_executed > 0
        assert m.total_energy > 0

    def test_run_averaged_repetitions_differ_then_average(self):
        cfg = BenchConfig(repetitions=3)
        m1 = run_one("mm-256", "GRWS", cfg, repetition=0)
        m2 = run_one("mm-256", "GRWS", cfg, repetition=1)
        assert m1.total_energy != m2.total_energy  # different seeds
        avg = run_averaged("mm-256", "GRWS", cfg)
        assert min(m1.total_energy, m2.total_energy) * 0.8 < avg.total_energy

    def test_run_matrix_shape(self):
        cfg = BenchConfig(repetitions=1)
        out = run_matrix(["mm-256"], ["GRWS", "Aequitas"], cfg)
        assert set(out) == {"mm-256"}
        assert set(out["mm-256"]) == {"GRWS", "Aequitas"}

    def test_workload_overrides_forwarded(self):
        m = run_one("mm-256", "GRWS", BenchConfig(repetitions=1), dop=1)
        assert m.tasks_executed > 0

    def test_suite_cached_across_calls(self):
        cfg = BenchConfig()
        assert cfg.suite() is cfg.suite()
