"""The unified ``repro.bench.run`` entry point: dispatch forms,
deprecated-shim equivalence and observer scoping."""

from __future__ import annotations

import warnings

import pytest

from repro.bench import BenchConfig, run, run_averaged, run_matrix
from repro.bench.result import ExperimentResult

CFG = BenchConfig(scale=0.5, repetitions=1)


def test_string_and_tuple_forms_are_equivalent():
    a = run("hd-small/GRWS", config=CFG)
    b = run(("hd-small", "GRWS"), config=CFG)
    assert a.total_energy == b.total_energy
    assert a.makespan == b.makespan


def test_matrix_form_returns_nested_mapping():
    grid = run((["hd-small"], ["GRWS", "Aequitas"]), config=CFG)
    assert set(grid) == {"hd-small"}
    assert set(grid["hd-small"]) == {"GRWS", "Aequitas"}
    point = run("hd-small/GRWS", config=CFG)
    assert grid["hd-small"]["GRWS"].total_energy == point.total_energy


def test_experiment_name_form():
    result = run("dop", config=CFG)
    assert isinstance(result, ExperimentResult)
    assert result.rows


def test_unknown_experiment_and_bad_spec_rejected():
    with pytest.raises(ValueError):
        run("no_such_experiment", config=CFG)
    with pytest.raises(TypeError):
        run(12345)
    with pytest.raises(TypeError):
        run(("a", "b", "c"))


def test_repeats_overrides_config_repetitions():
    from repro.obs import observe

    obs = observe()
    seen = []
    obs.bus.subscribe(seen.append, types=["run_finished"])
    run("hd-small/GRWS", repeats=3, config=CFG, obs=obs)
    assert len(seen) == 3  # config said 1; repeats=3 wins


def test_deprecated_shims_warn_and_match():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        avg = run_averaged("hd-small", "GRWS", CFG)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    assert avg.total_energy == run("hd-small/GRWS", config=CFG).total_energy

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        grid = run_matrix(["hd-small"], ["GRWS"], CFG)
    assert any(issubclass(w.category, DeprecationWarning) for w in caught)
    new_grid = run((["hd-small"], ["GRWS"]), config=CFG)
    assert (
        grid["hd-small"]["GRWS"].total_energy
        == new_grid["hd-small"]["GRWS"].total_energy
    )


def test_run_scopes_explicit_observer():
    from repro.obs import observe
    from repro.obs.api import current_observer

    obs = observe()
    seen = []
    obs.bus.subscribe(seen.append, types=["run_finished"])
    assert current_observer() is None
    run("hd-small/GRWS", config=CFG, obs=obs)
    assert current_observer() is None  # scoped, not leaked
    assert len(seen) == 1
    assert seen[0].fields["workload"] == "hd-small"
