"""Averaging semantics and BenchConfig memoization."""

from __future__ import annotations

from repro.bench.runner import BenchConfig
from repro.runtime.metrics import RunMetrics, average_run_metrics


def _metrics(steals=0, transitions=0, extras=None, makespan=1.0) -> RunMetrics:
    m = RunMetrics(scheduler="S", workload="W")
    m.makespan = makespan
    m.steals = steals
    m.cluster_freq_transitions = transitions
    m.memory_freq_transitions = transitions
    m.extras = dict(extras or {})
    return m


def test_counts_round_to_nearest_not_truncate():
    # Mean 2.67 must become 3; int(np.mean(...)) used to truncate to 2.
    avg = average_run_metrics(
        [_metrics(steals=2), _metrics(steals=3), _metrics(steals=3)]
    )
    assert avg.steals == 3


def test_transition_counts_round_too():
    avg = average_run_metrics(
        [_metrics(transitions=1), _metrics(transitions=2), _metrics(transitions=2)]
    )
    assert avg.cluster_freq_transitions == 2
    assert avg.memory_freq_transitions == 2


def test_numeric_extras_are_averaged_across_repetitions():
    runs = [
        _metrics(extras={"selection_evaluations": 10, "ratio": 0.5, "tag": "a"}),
        _metrics(extras={"selection_evaluations": 13, "ratio": 1.5, "tag": "b"}),
    ]
    avg = average_run_metrics(runs)
    # All-int fields round to the nearest count; floats stay exact means.
    assert avg.extras["selection_evaluations"] == 12  # mean 11.5 -> even 12
    assert avg.extras["ratio"] == 1.0
    # Non-numeric fields keep repetition 0's value (old behaviour).
    assert avg.extras["tag"] == "a"


def test_mixed_type_extras_keep_first_value():
    runs = [_metrics(extras={"k": 1}), _metrics(extras={"k": "oops"})]
    assert average_run_metrics(runs).extras["k"] == 1


def test_float_fields_are_plain_means():
    avg = average_run_metrics([_metrics(makespan=1.0), _metrics(makespan=3.0)])
    assert avg.makespan == 2.0


def test_bench_config_suite_is_memoized_per_instance(monkeypatch):
    calls = []
    import repro.bench.runner as runner_mod

    real = runner_mod.profile_and_fit

    def counting(*args, **kwargs):
        calls.append(1)
        return real(*args, **kwargs)

    monkeypatch.setattr(runner_mod, "profile_and_fit", counting)
    cfg = BenchConfig()
    first = cfg.suite()
    assert cfg.suite() is first
    assert len(calls) == 1  # docstring's "(cached)" now holds per instance


def test_platform_name_probe_is_memoized():
    probes = []
    from repro.hw.platform import jetson_tx2

    def counting_factory():
        probes.append(1)
        return jetson_tx2()

    cfg = BenchConfig(platform_factory=counting_factory)
    assert cfg.platform_name() == "jetson-tx2"
    assert cfg.platform_name() == "jetson-tx2"
    assert len(probes) == 1
    # A custom factory is not the registered one for that name.
    assert not cfg.registered_platform()
    assert BenchConfig().registered_platform()
