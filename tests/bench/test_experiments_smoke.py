"""Smoke tests for the experiment modules (reduced sizes).

The full artefact regenerations (with shape assertions) live in
``benchmarks/``; here we check that every experiment runs, returns
well-formed rows and persists cleanly, using cut-down inputs.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import ALL, fig8, fig9, sampling, tab1
from repro.bench.runner import BenchConfig


def test_registry_complete():
    assert set(ALL) == {
        "fig1", "fig2", "fig5", "tab1", "fig8", "fig9", "fig10",
        "overhead", "sampling", "sec71", "percore", "degree", "dop",
        "governors", "portability", "multiprog", "granularity",
        "ablation",
    }
    for mod in ALL.values():
        assert hasattr(mod, "run")


def test_tab1_runs_and_saves(tmp_path):
    r = tab1.run()
    assert len(r.rows) == 15
    assert (tmp_path / "tab1.txt") == r.save(tmp_path)


def test_fig8_reduced():
    cfg = BenchConfig(repetitions=1)
    r = fig8.run(cfg, workloads=["mm-256", "mc-4096"],
                 schedulers=("GRWS", "STEER", "JOSS"))
    assert {row["workload"] for row in r.rows} == {"mm-256", "mc-4096"}
    assert "JOSS_avg_reduction" in r.summary
    for row in r.rows:
        assert row["GRWS"] == pytest.approx(1.0)


def test_fig9_reduced():
    cfg = BenchConfig(repetitions=1)
    r = fig9.run(cfg, workloads=["mm-256"], variants=("JOSS", "JOSS_MAXP"))
    row = r.rows[0]
    assert row["JOSS_time"] == pytest.approx(1.0)
    assert row["JOSS_MAXP_time"] <= 1.05


def test_sampling_reduced():
    cfg = BenchConfig(repetitions=1)
    r = sampling.run(cfg, workloads=["dp"], scales=[1.0, 2.0])
    assert len(r.rows) == 2
    assert all(row["sampling_time_s"] > 0 for row in r.rows)
