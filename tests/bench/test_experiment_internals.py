"""Unit tests for experiment-module internals (fast, reduced inputs)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import fig1, fig2, fig5, overhead
from repro.bench.oracle import ConfigurationExplorer
from repro.hw import jetson_tx2


class TestFig1Internals:
    @pytest.fixture(scope="class")
    def points(self):
        explorer = ConfigurationExplorer(jetson_tx2, seed=0)
        return explorer.sweep(
            fig1.BENCHMARKS["MC"],
            f_c_values=[0.806, 1.570, 2.040],
            f_m_values=[0.408, 1.866],
            tasks=1,
        )

    def test_argmin_full_space(self, points):
        best = fig1._argmin(points, lambda p: p.total_energy)
        assert all(
            best.total_energy <= p.total_energy for p in points.values()
        )

    def test_argmin_fm_restricted(self, points):
        best = fig1._argmin(points, lambda p: p.cpu_energy, fm_max=1.866)
        assert best.f_m == 1.866

    def test_argmin_fixed_three_knobs(self, points):
        any_pt = next(iter(points.values()))
        fixed = (any_pt.cluster, any_pt.n_cores, any_pt.f_c)
        best = fig1._argmin(points, lambda p: p.total_energy, fixed3=fixed)
        assert (best.cluster, best.n_cores, best.f_c) == fixed

    def test_benchmarks_are_mm_and_mc(self):
        assert set(fig1.BENCHMARKS) == {"MM", "MC"}
        assert fig1.BENCHMARKS["MM"].w_comp > fig1.BENCHMARKS["MC"].w_comp


class TestFig2Frontier:
    def test_reduced_run_has_monotone_frontier(self):
        r = fig2.run(tasks_per_point=1)
        for bench in ("MM", "MC"):
            pts = [
                row for row in r.rows
                if row["benchmark"] == bench and row["kind"] == "frontier"
            ]
            speeds = [p["speedup"] for p in pts]
            assert speeds == sorted(speeds)
            assert speeds[0] == pytest.approx(1.0, abs=1e-6)


class TestFig5Levels:
    def test_three_mb_levels_ordered(self):
        r = fig5.run()
        # high-MB kernels draw less CPU power than low-MB at max f_C.
        def cpu_at(level):
            return max(
                row["cpu_power_w"] for row in r.rows
                if row["level"] == level and row["f_c"] == 2.040
            )

        assert cpu_at("low-MB") > cpu_at("mid-MB") > cpu_at("high-MB")


class TestOverheadInternals:
    def test_tables_for_builds_full_grids(self):
        from repro.models import profile_and_fit
        from repro.profiling import synthetic_kernels

        suite = profile_and_fit(jetson_tx2, seed=0)
        explorer = ConfigurationExplorer(jetson_tx2, seed=1)
        kernel = synthetic_kernels(jetson_tx2(), count=5, t_ref=0.004)[2]
        tables = overhead._tables_for(suite, explorer, kernel)
        assert set(tables) == set(suite.config_keys())
        for tab in tables.values():
            assert tab.shape == (12, 7)
