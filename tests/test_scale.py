"""Scale smoke tests: the DES must handle paper-ward task counts.

Not a micro-benchmark — just a guarantee that a 10k-task graph runs to
completion in reasonable wall time and bounded memory, so users can
turn the ``scale`` knob toward the paper's sizes.
"""

from __future__ import annotations

import time

from repro.hw import jetson_tx2
from repro.runtime import Executor
from repro.schedulers import GrwsScheduler
from repro.workloads import build_workload


def test_ten_thousand_task_run_completes_quickly():
    graph = build_workload("hd-small", scale=16.0, seed=1)
    assert len(graph) > 8_000
    ex = Executor(jetson_tx2(), GrwsScheduler(), seed=1)
    t0 = time.perf_counter()
    m = ex.run(graph)
    elapsed = time.perf_counter() - t0
    assert m.tasks_executed == len(graph)
    assert elapsed < 60.0  # ~1k+ tasks/s of DES throughput
    # Sanity: throughput metric for the record.
    assert m.steals >= 0


def test_model_based_scheduler_at_scale():
    from repro.core import JossScheduler
    from repro.models import profile_and_fit

    suite = profile_and_fit(jetson_tx2, seed=0)
    graph = build_workload("dp", scale=8.0, seed=1)
    assert len(graph) > 4_000
    ex = Executor(jetson_tx2(), JossScheduler(suite), seed=1)
    t0 = time.perf_counter()
    m = ex.run(graph)
    assert time.perf_counter() - t0 < 60.0
    assert m.tasks_executed == len(graph)
    # At this scale sampling is a small fraction of task time.
    busy = sum(ks.total_time for ks in m.per_kernel.values())
    assert m.sampling_time / busy < 0.05
