"""Tests for the PMC-free MB estimator (paper Eq. 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.models import estimate_mb


def test_pure_compute_gives_zero():
    # Halving frequency doubles time => MB = 0.
    assert estimate_mb(1.0, 2.0, 2.0, 1.0) == pytest.approx(0.0)


def test_pure_memory_gives_one():
    # Time unchanged by core frequency => MB = 1.
    assert estimate_mb(1.0, 1.0, 2.0, 1.0) == pytest.approx(1.0)


def test_half_and_half():
    # time(f) = 0.5 + 0.5 * (2/1) = 1.5 at half frequency.
    assert estimate_mb(1.0, 1.5, 2.0, 1.0) == pytest.approx(0.5)


def test_clamped_to_unit_interval():
    assert estimate_mb(1.0, 2.5, 2.0, 1.0) == 0.0   # super-linear slowdown
    assert estimate_mb(1.0, 0.9, 2.0, 1.0) == 1.0   # speedup at lower freq


def test_equal_frequencies_rejected():
    with pytest.raises(ModelError):
        estimate_mb(1.0, 1.0, 2.0, 2.0)


def test_nonpositive_times_rejected():
    with pytest.raises(ModelError):
        estimate_mb(0.0, 1.0, 2.0, 1.0)


@given(
    mb=st.floats(0.0, 1.0),
    f_ref=st.sampled_from([2.04, 1.57]),
    f_new=st.sampled_from([0.345, 0.96, 1.11]),
    t=st.floats(0.001, 10.0),
)
def test_property_roundtrip_under_model_assumptions(mb, f_ref, f_new, t):
    """If times truly follow the Eq. 1 decomposition, Eq. 3 recovers MB."""
    t_scaled = t * ((1 - mb) * (f_ref / f_new) + mb)
    est = estimate_mb(t, t_scaled, f_ref, f_new)
    assert est == pytest.approx(mb, abs=1e-9)
