"""Tests for the degree-2 MPR regressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.models import Poly2Regressor


def test_param_count():
    assert Poly2Regressor(1).n_params == 3
    assert Poly2Regressor(2).n_params == 6
    assert Poly2Regressor(3).n_params == 10


def test_recovers_exact_quadratic():
    """A function inside the model class is recovered exactly."""
    rng = np.random.default_rng(0)
    x = rng.uniform(-2, 2, size=(200, 3))

    def f(x):
        return 1.5 - 2.0 * x[:, 0] + 0.5 * x[:, 1] ** 2 + 3.0 * x[:, 0] * x[:, 2]

    reg = Poly2Regressor(3).fit(x, f(x))
    assert reg.train_rmse < 1e-9
    x_test = rng.uniform(-2, 2, size=(50, 3))
    np.testing.assert_allclose(reg.predict(x_test), f(x_test), atol=1e-8)


def test_noisy_fit_near_truth():
    rng = np.random.default_rng(1)
    x = rng.uniform(0, 1, size=(500, 2))
    y = 2.0 + x[:, 0] + x[:, 1] ** 2 + 0.01 * rng.standard_normal(500)
    reg = Poly2Regressor(2).fit(x, y)
    pred = reg.predict_one(0.5, 0.5)
    assert pred == pytest.approx(2.0 + 0.5 + 0.25, abs=0.02)


def test_predict_before_fit_raises():
    with pytest.raises(ModelError):
        Poly2Regressor(2).predict(np.zeros((1, 2)))


def test_underdetermined_rejected():
    with pytest.raises(ModelError):
        Poly2Regressor(3).fit(np.zeros((5, 3)), np.zeros(5))


def test_wrong_feature_count_rejected():
    reg = Poly2Regressor(2)
    with pytest.raises(ModelError):
        reg.expand(np.zeros((3, 4)))


def test_zero_features_rejected():
    with pytest.raises(ModelError):
        Poly2Regressor(0)


@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(-3, 3), b=st.floats(-3, 3), c=st.floats(-3, 3),
)
def test_property_quadratics_are_interpolated(a, b, c):
    """Any 1-D quadratic is in the hypothesis space."""
    x = np.linspace(-1, 1, 30)[:, None]
    y = a + b * x[:, 0] + c * x[:, 0] ** 2
    reg = Poly2Regressor(1).fit(x, y)
    assert reg.train_rmse < 1e-6 * max(1.0, abs(a) + abs(b) + abs(c))
