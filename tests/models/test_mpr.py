"""Tests for the degree-2 MPR regressor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.models import Poly2Regressor


def test_param_count():
    assert Poly2Regressor(1).n_params == 3
    assert Poly2Regressor(2).n_params == 6
    assert Poly2Regressor(3).n_params == 10


def test_recovers_exact_quadratic():
    """A function inside the model class is recovered exactly."""
    rng = np.random.default_rng(0)
    x = rng.uniform(-2, 2, size=(200, 3))

    def f(x):
        return 1.5 - 2.0 * x[:, 0] + 0.5 * x[:, 1] ** 2 + 3.0 * x[:, 0] * x[:, 2]

    reg = Poly2Regressor(3).fit(x, f(x))
    assert reg.train_rmse < 1e-9
    x_test = rng.uniform(-2, 2, size=(50, 3))
    np.testing.assert_allclose(reg.predict(x_test), f(x_test), atol=1e-8)


def test_noisy_fit_near_truth():
    rng = np.random.default_rng(1)
    x = rng.uniform(0, 1, size=(500, 2))
    y = 2.0 + x[:, 0] + x[:, 1] ** 2 + 0.01 * rng.standard_normal(500)
    reg = Poly2Regressor(2).fit(x, y)
    pred = reg.predict_one(0.5, 0.5)
    assert pred == pytest.approx(2.0 + 0.5 + 0.25, abs=0.02)


def test_predict_before_fit_raises():
    with pytest.raises(ModelError):
        Poly2Regressor(2).predict(np.zeros((1, 2)))


def test_underdetermined_rejected():
    with pytest.raises(ModelError):
        Poly2Regressor(3).fit(np.zeros((5, 3)), np.zeros(5))


def test_wrong_feature_count_rejected():
    reg = Poly2Regressor(2)
    with pytest.raises(ModelError):
        reg.expand(np.zeros((3, 4)))


def test_zero_features_rejected():
    with pytest.raises(ModelError):
        Poly2Regressor(0)


@settings(max_examples=25, deadline=None)
@given(
    a=st.floats(-3, 3), b=st.floats(-3, 3), c=st.floats(-3, 3),
)
def test_property_quadratics_are_interpolated(a, b, c):
    """Any 1-D quadratic is in the hypothesis space."""
    x = np.linspace(-1, 1, 30)[:, None]
    y = a + b * x[:, 0] + c * x[:, 0] ** 2
    reg = Poly2Regressor(1).fit(x, y)
    assert reg.train_rmse < 1e-6 * max(1.0, abs(a) + abs(b) + abs(c))


def _naive_expand(reg, x):
    """The original per-term expansion: a left-to-right product per
    monomial.  The plan-based fast path must reproduce it bit for bit."""
    x = np.atleast_2d(np.asarray(x, dtype=float))
    phi = np.empty((x.shape[0], reg.n_params))
    for i, term in enumerate(reg._terms):
        col = np.ones(x.shape[0])
        for feat in term:
            col = col * x[:, feat]
        phi[:, i] = col
    return phi


@settings(max_examples=30, deadline=None)
@given(
    nf=st.integers(min_value=1, max_value=4),
    degree=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_expand_matches_naive_bitwise(nf, degree, seed):
    from repro.models import PolynomialRegressor

    reg = PolynomialRegressor(nf, degree)
    rng = np.random.default_rng(seed)
    x = rng.uniform(-2.5, 2.5, size=(17, nf))
    np.testing.assert_array_equal(reg.expand(x), _naive_expand(reg, x))


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_property_predict_one_matches_single_row_batch_bitwise(seed):
    """The scalar fast path must reproduce a one-row ``predict`` bit
    for bit — that is what ``predict_one`` always was, so decisions
    made through either shape are identical.  (A multi-row batch may
    use a different BLAS kernel and is only approximately equal.)"""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.1, 2.0, size=(60, 3))
    y = x[:, 0] + 0.5 * x[:, 1] * x[:, 2]
    reg = Poly2Regressor(3).fit(x, y)
    probe = rng.uniform(0.1, 2.0, size=(8, 3))
    for i in range(probe.shape[0]):
        single = float(reg.predict(probe[i][None, :])[0])
        assert reg.predict_one(*probe[i]) == single
