"""Tests for k-fold cross-validation and residual diagnostics."""

from __future__ import annotations

import math

import pytest

from repro.errors import ModelError
from repro.hw import jetson_tx2
from repro.models import fit_models
from repro.models.validation import kfold_validate, residual_report
from repro.profiling import PlatformProfiler, ProfilingDataset


@pytest.fixture(scope="module")
def dataset():
    return PlatformProfiler(jetson_tx2, seed=0, synthetic_count=21).run()


class TestKFold:
    def test_generalisation_across_kernels(self, dataset):
        report = kfold_validate(dataset, k=4)
        assert len(report.folds) == 4
        s = report.summary()
        # Held-out synthetic kernels are interpolations of the ratio
        # sweep: accuracy must stay high.
        assert s["performance_mean"] > 0.90
        assert s["cpu_power_mean"] > 0.80
        assert s["mem_power_mean"] > 0.60

    def test_folds_partition_kernels(self, dataset):
        report = kfold_validate(dataset, k=3)
        held = [k for f in report.folds for k in f.held_out_kernels]
        assert sorted(held) == sorted(dataset.kernel_names())

    def test_too_many_folds_rejected(self, dataset):
        with pytest.raises(ModelError):
            kfold_validate(dataset, k=1000)

    def test_deterministic_given_seed(self, dataset):
        a = kfold_validate(dataset, k=3, seed=4).summary()
        b = kfold_validate(dataset, k=3, seed=4).summary()
        assert a == b

    def test_degree_parameter_forwarded(self, dataset):
        deg1 = kfold_validate(dataset, k=3, degree=1).summary()
        deg2 = kfold_validate(dataset, k=3, degree=2).summary()
        assert deg2["performance_mean"] > deg1["performance_mean"]


class TestResiduals:
    def test_report_covers_all_configs(self, dataset):
        suite = fit_models(dataset)
        stats = residual_report(suite)
        assert len(stats) == len(suite.models)
        for st in stats:
            assert math.isfinite(st.performance_rmse)
            assert st.cpu_power_rmse >= 0
            assert st.mem_power_rmse >= 0

    def test_power_residuals_reasonable(self, dataset):
        """Training residuals stay below typical rail powers (watts)."""
        suite = fit_models(dataset)
        for st in residual_report(suite):
            assert st.cpu_power_rmse < 0.5
            assert st.mem_power_rmse < 0.5
