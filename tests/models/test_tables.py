"""Tests for the prediction-table layer: storage-formula validation,
the energy-grid memo, the broadcastable CPU-power column, and the
batched ``build_tables`` path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.models.tables import grid_mesh, storage_entries


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def _any_table(suite, **kw):
    cl, nc = suite.config_keys()[0]
    fc = np.asarray([0.5, 1.0, 1.5, 2.0])
    fm = np.asarray([0.8, 1.3, 1.8])
    return suite.build_table(cl, nc, 0.4, 0.01, fc, fm, **kw)


class TestStorageEntries:
    def test_tx2_numbers(self):
        """Section 7.4 on the TX2: M=2 clusters, N/M=4 cores, so the
        core-count ladder is 1/2/4 — three options per cluster."""
        tx2 = jetson_tx2()
        n_fc = len(tx2.clusters[0].opps.as_array())
        n_fm = len(tx2.memory.opps.as_array())
        assert storage_entries(2, 4, n_fc, n_fm) == 3 * 2 * 3 * n_fc * n_fm

    @pytest.mark.parametrize("cores", [3, 5, 6, 7, 12])
    def test_non_power_of_two_rejected(self, cores):
        with pytest.raises(ValueError, match="power of two"):
            storage_entries(2, cores, 12, 7)

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            storage_entries(2, 0, 12, 7)

    @pytest.mark.parametrize("cores,options", [(1, 1), (2, 2), (4, 3), (8, 4)])
    def test_power_of_two_ladder(self, cores, options):
        assert storage_entries(1, cores, 2, 3) == 3 * options * 2 * 3


class TestEnergyMemo:
    def test_repeat_calls_return_cached_grid(self, suite):
        tab = _any_table(suite)
        a = tab.energy_grid(concurrency=2.0)
        b = tab.energy_grid(concurrency=2.0)
        assert a is b
        assert tab.cpu_energy_grid(3.0) is tab.cpu_energy_grid(3.0)

    def test_memo_keyed_by_concurrency(self, suite):
        tab = _any_table(suite)
        assert tab.energy_grid(1.0) is not tab.energy_grid(2.0)
        assert not np.array_equal(tab.energy_grid(1.0), tab.energy_grid(2.0))

    def test_cached_equals_fresh_computation(self, suite):
        tab = _any_table(suite)
        cached = tab.energy_grid(2.0)
        idle = tab.idle_cpu[:, None] / 2.0 + tab.idle_mem[None, :] / 2.0
        fresh = tab.time * (tab.cpu_power + tab.mem_power + idle)
        np.testing.assert_array_equal(cached, fresh)


class TestCpuPowerColumn:
    def test_stored_as_broadcastable_column(self, suite):
        tab = _any_table(suite)
        assert tab.cpu_power.shape == (len(tab.f_c_grid), 1)

    def test_energy_matches_materialised_grid(self, suite):
        """Broadcasting the (n_fc, 1) column must give exactly what the
        old materialised (n_fc, n_fm) grid gave."""
        tab = _any_table(suite)
        full = tab.cpu_power * np.ones_like(tab.time)
        idle = tab.idle_cpu[:, None] / 2.0 + tab.idle_mem[None, :] / 2.0
        expected = tab.time * (full + tab.mem_power + idle)
        np.testing.assert_array_equal(tab.energy_grid(2.0), expected)


class TestBuildTables:
    def test_matches_per_config_build_table(self, suite):
        """The batched mesh-sharing path is bit-identical to looping
        build_table config by config."""
        fc = np.asarray([0.5, 1.0, 1.5, 2.0])
        fm = np.asarray([0.8, 1.3, 1.8])
        params = {
            key: (0.2 + 0.1 * i, 0.01 * (i + 1))
            for i, key in enumerate(suite.config_keys())
        }
        grids = {cl: (fc, fm) for cl, _ in suite.config_keys()}
        batched = suite.build_tables(params, grids)
        assert list(batched) == suite.config_keys()
        for key, (mb, t_ref) in params.items():
            single = suite.build_table(key[0], key[1], mb, t_ref, fc, fm)
            np.testing.assert_array_equal(batched[key].time, single.time)
            np.testing.assert_array_equal(
                batched[key].cpu_power, single.cpu_power
            )
            np.testing.assert_array_equal(
                batched[key].mem_power, single.mem_power
            )

    def test_explicit_mesh_matches_default(self, suite):
        fc = np.asarray([0.5, 1.0, 2.0])
        fm = np.asarray([0.8, 1.8])
        cl, nc = suite.config_keys()[0]
        default = suite.build_table(cl, nc, 0.4, 0.01, fc, fm)
        explicit = suite.build_table(
            cl, nc, 0.4, 0.01, fc, fm, mesh=grid_mesh(fc, fm)
        )
        np.testing.assert_array_equal(default.time, explicit.time)
        np.testing.assert_array_equal(default.mem_power, explicit.mem_power)
