"""Tests for model fitting and the fitted suite's predictive quality.

A full (reduced-size) profile-and-fit runs once per module; accuracy
assertions mirror the paper's Figure 10 expectations qualitatively.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.exec_model import GroundTruthTiming, KernelSpec
from repro.hw import jetson_tx2
from repro.models import estimate_mb, fit_models, profile_and_fit
from repro.models.tables import storage_entries
from repro.profiling import PlatformProfiler


@pytest.fixture(scope="module")
def suite():
    prof = PlatformProfiler(jetson_tx2, seed=0, synthetic_count=21)
    return fit_models(prof.run())


@pytest.fixture(scope="module")
def oracle():
    tx2 = jetson_tx2()
    return tx2, GroundTruthTiming(tx2.memory)


def _mb_and_tref(timing, kernel, ct, nc, suite):
    t_ref = timing.duration(kernel, ct, nc, suite.f_c_ref, suite.f_m_ref)
    t_s = timing.duration(kernel, ct, nc, suite.f_c_sample, suite.f_m_ref)
    return estimate_mb(t_ref, t_s, suite.f_c_ref, suite.f_c_sample), t_ref


class TestSuiteStructure:
    def test_all_configs_fitted(self, suite):
        assert set(suite.config_keys()) == {
            ("denver", 1), ("denver", 2), ("a57", 1), ("a57", 2), ("a57", 4)
        }

    def test_reference_frequencies(self, suite):
        assert suite.f_c_ref == 2.04
        assert suite.f_m_ref == 1.866
        assert suite.f_c_sample < suite.f_c_ref

    def test_unknown_config_raises(self, suite):
        with pytest.raises(ModelError):
            suite.config("m1", 1)

    def test_empty_dataset_rejected(self):
        from repro.profiling import ProfilingDataset

        with pytest.raises(ModelError):
            fit_models(ProfilingDataset())


class TestPredictionAccuracy:
    """Held-out kernels (not in the synthetic training set)."""

    KERNELS = [
        KernelSpec("cmp", w_comp=0.8, w_bytes=0.003, type_affinity={"denver": 1.4}),
        KernelSpec("mix", w_comp=0.1, w_bytes=0.02),
        KernelSpec("mem", w_comp=0.01, w_bytes=0.05),
    ]

    def test_time_predictions_within_10pct_mean(self, suite, oracle):
        tx2, timing = oracle
        errs = []
        for k in self.KERNELS:
            for cl_name, nc in suite.config_keys():
                ct = tx2.cluster_by_type(cl_name).core_type
                mb, t_ref = _mb_and_tref(timing, k, ct, nc, suite)
                for fc in (0.652, 1.110, 1.570, 2.040):
                    for fm in (0.408, 0.800, 1.331, 1.866):
                        pred = suite.predict_time(cl_name, nc, mb, t_ref, fc, fm)
                        true = timing.duration(k, ct, nc, fc, fm)
                        errs.append(abs(pred - true) / true)
        assert np.mean(errs) < 0.10  # paper: 97% mean accuracy

    def test_time_prediction_at_reference_is_identity(self, suite, oracle):
        tx2, timing = oracle
        k = self.KERNELS[1]
        ct = tx2.cluster_by_type("a57").core_type
        mb, t_ref = _mb_and_tref(timing, k, ct, 1, suite)
        pred = suite.predict_time("a57", 1, mb, t_ref, suite.f_c_ref, suite.f_m_ref)
        assert pred == pytest.approx(t_ref, rel=0.05)

    def test_cpu_power_monotone_in_freq(self, suite):
        p_lo = suite.predict_cpu_power("denver", 1, 0.1, 0.652)
        p_hi = suite.predict_cpu_power("denver", 1, 0.1, 2.040)
        assert p_hi > p_lo

    def test_mem_power_higher_for_memory_bound(self, suite):
        lo = suite.predict_mem_power("a57", 1, 0.05, 2.04, 1.866)
        hi = suite.predict_mem_power("a57", 1, 0.9, 2.04, 1.866)
        assert hi > lo

    def test_idle_powers_positive_and_monotone(self, suite):
        assert suite.idle.cpu_idle(0.345) > 0
        assert suite.idle.cpu_idle(2.04) > suite.idle.cpu_idle(0.345)
        assert suite.idle.mem_idle(1.866) > suite.idle.mem_idle(0.408)


class TestPredictionTable:
    def test_build_table_shapes(self, suite, oracle):
        tx2, timing = oracle
        ct = tx2.cluster_by_type("a57").core_type
        k = TestPredictionAccuracy.KERNELS[1]
        mb, t_ref = _mb_and_tref(timing, k, ct, 2, suite)
        fc = tx2.clusters[1].opps.as_array()
        fm = tx2.memory.opps.as_array()
        tab = suite.build_table("a57", 2, mb, t_ref, fc, fm)
        assert tab.shape == (12, 7)
        assert tab.energy_grid().shape == (12, 7)
        assert np.all(tab.time > 0)
        assert np.all(tab.energy_grid() > 0)

    def test_energy_grid_concurrency_attribution(self, suite, oracle):
        """Idle power split across more concurrent tasks lowers the
        per-task energy estimate."""
        tx2, timing = oracle
        ct = tx2.cluster_by_type("a57").core_type
        k = TestPredictionAccuracy.KERNELS[0]
        mb, t_ref = _mb_and_tref(timing, k, ct, 1, suite)
        fc = tx2.clusters[1].opps.as_array()
        fm = tx2.memory.opps.as_array()
        tab = suite.build_table("a57", 1, mb, t_ref, fc, fm)
        solo = tab.energy_grid(concurrency=1)
        shared = tab.energy_grid(concurrency=4)
        assert np.all(shared < solo)

    def test_cpu_energy_grid_excludes_memory(self, suite, oracle):
        tx2, timing = oracle
        ct = tx2.cluster_by_type("denver").core_type
        k = TestPredictionAccuracy.KERNELS[0]
        mb, t_ref = _mb_and_tref(timing, k, ct, 1, suite)
        fc = tx2.clusters[0].opps.as_array()
        fm = tx2.memory.opps.as_array()
        tab = suite.build_table("denver", 1, mb, t_ref, fc, fm)
        assert np.all(tab.cpu_energy_grid() < tab.energy_grid())

    def test_storage_formula(self):
        # Paper 7.4: 3 * M * log(N/M) * Nf_C * Nf_M
        assert storage_entries(2, 4, 12, 7) == 3 * 2 * 3 * 12 * 7


class TestCache:
    def test_profile_and_fit_cached(self):
        s1 = profile_and_fit(jetson_tx2, seed=0, synthetic_count=11)
        s2 = profile_and_fit(jetson_tx2, seed=0, synthetic_count=11)
        assert s1 is s2

    def test_cache_respects_settings(self):
        s1 = profile_and_fit(jetson_tx2, seed=0, synthetic_count=11)
        s2 = profile_and_fit(jetson_tx2, seed=1, synthetic_count=11)
        assert s1 is not s2
