"""Tests for model-suite serialisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ModelError
from repro.hw import jetson_tx2
from repro.models import fit_models, load_suite, save_suite
from repro.models.io import suite_from_dict, suite_to_dict
from repro.models.mpr import Poly2Regressor
from repro.profiling import PlatformProfiler


@pytest.fixture(scope="module")
def suite():
    prof = PlatformProfiler(jetson_tx2, seed=0, synthetic_count=11)
    return fit_models(prof.run())


class TestRegressorState:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, size=(50, 2))
        y = 1 + x[:, 0] + x[:, 1] ** 2
        reg = Poly2Regressor(2).fit(x, y)
        clone = Poly2Regressor.from_state(reg.get_state())
        np.testing.assert_allclose(clone.predict(x), reg.predict(x))
        assert clone.train_rmse == reg.train_rmse

    def test_unfitted_rejected(self):
        with pytest.raises(ModelError):
            Poly2Regressor(2).get_state()

    def test_bad_shape_rejected(self):
        with pytest.raises(ModelError):
            Poly2Regressor.from_state({"n_features": 2, "coef": [1.0, 2.0]})


class TestSuiteRoundtrip:
    def test_file_roundtrip_preserves_predictions(self, suite, tmp_path):
        path = save_suite(suite, tmp_path / "suite.json")
        loaded = load_suite(path)
        assert loaded.platform_name == suite.platform_name
        assert loaded.f_c_ref == suite.f_c_ref
        assert loaded.f_c_sample == suite.f_c_sample
        assert set(loaded.config_keys()) == set(suite.config_keys())
        for cl, nc in suite.config_keys():
            for mb in (0.05, 0.5, 0.95):
                t1 = suite.predict_time(cl, nc, mb, 0.01, 1.11, 0.8)
                t2 = loaded.predict_time(cl, nc, mb, 0.01, 1.11, 0.8)
                assert t2 == pytest.approx(t1)
                p1 = suite.predict_mem_power(cl, nc, mb, 1.11, 0.8)
                p2 = loaded.predict_mem_power(cl, nc, mb, 1.11, 0.8)
                assert p2 == pytest.approx(p1)
        assert loaded.idle.cpu_idle(1.11) == pytest.approx(suite.idle.cpu_idle(1.11))

    def test_loaded_suite_drives_scheduler(self, suite, tmp_path):
        from repro.core import JossScheduler
        from repro.runtime import Executor
        from repro.workloads import build_workload

        loaded = load_suite(save_suite(suite, tmp_path / "s.json"))
        ex = Executor(jetson_tx2(), JossScheduler(loaded), seed=5)
        m = ex.run(build_workload("mm-256", seed=2))
        assert m.tasks_executed > 0

    def test_version_check(self, suite):
        d = suite_to_dict(suite)
        d["version"] = 99
        with pytest.raises(ModelError):
            suite_from_dict(d)
