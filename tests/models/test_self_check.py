"""Tests for the model-suite self-check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw import jetson_tx2
from repro.hw.platform import odroid_xu4
from repro.models import profile_and_fit
from repro.models.mpr import PolynomialRegressor


def test_healthy_suites_pass():
    assert profile_and_fit(jetson_tx2, seed=0).self_check() == []
    assert profile_and_fit(odroid_xu4, seed=0).self_check() == []


def test_corrupted_suite_flagged():
    import copy

    suite = profile_and_fit(jetson_tx2, seed=0)
    broken = copy.deepcopy(suite)
    # Sabotage one CPU power model: force it to predict a falling curve.
    cm = broken.config("denver", 1)
    x = np.column_stack([np.linspace(0, 1, 30), np.linspace(0.3, 2.1, 30)])
    y = 5.0 - 2.0 * x[:, 1]  # power falls with frequency
    cm.cpu_power._reg = PolynomialRegressor(2).fit(x, y)
    problems = broken.self_check()
    assert any("CPU power falls" in p for p in problems)
    # The original stays healthy (deepcopy isolated the sabotage).
    assert suite.self_check() == []


def test_loaded_suite_passes(tmp_path):
    from repro.models import load_suite, save_suite

    suite = profile_and_fit(jetson_tx2, seed=0)
    loaded = load_suite(save_suite(suite, tmp_path / "s.json"))
    assert loaded.self_check() == []


def test_cli_profile_persistence(tmp_path, capsys):
    from repro.cli import main

    ds_path = tmp_path / "ds.json"
    models_path = tmp_path / "models.json"
    rc = main(
        ["profile", "--save-dataset", str(ds_path),
         "--save-models", str(models_path)]
    )
    assert rc == 0
    assert ds_path.exists() and models_path.exists()
    out = capsys.readouterr().out
    assert "self-check: OK" in out
    # And fitting from the saved dataset works.
    rc = main(["profile", "--dataset", str(ds_path)])
    assert rc == 0
    assert "loaded dataset" in capsys.readouterr().out
