"""Tests for kernel specifications."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exec_model import KernelSpec


def test_basic_construction():
    k = KernelSpec("k", w_comp=1.0, w_bytes=0.5, type_affinity={"denver": 1.5})
    assert k.affinity("denver") == 1.5
    assert k.affinity("a57") == 1.0  # default


def test_negative_work_rejected():
    with pytest.raises(ValueError):
        KernelSpec("k", w_comp=-1.0, w_bytes=0.0)


def test_zero_work_rejected():
    with pytest.raises(ValueError):
        KernelSpec("k", w_comp=0.0, w_bytes=0.0)


def test_bad_efficiency_rejected():
    with pytest.raises(ValueError):
        KernelSpec("k", w_comp=1.0, w_bytes=0.0, parallel_efficiency=0.0)
    with pytest.raises(ValueError):
        KernelSpec("k", w_comp=1.0, w_bytes=0.0, parallel_efficiency=1.2)


def test_comp_scaling_shape():
    k = KernelSpec("k", w_comp=1.0, w_bytes=0.0, parallel_efficiency=0.9)
    assert k.comp_scaling(1) == 1.0
    assert k.comp_scaling(2) == pytest.approx(1.8)
    assert k.comp_scaling(4) == pytest.approx(4 * 0.81)


def test_perfect_efficiency_is_linear():
    k = KernelSpec("k", w_comp=1.0, w_bytes=0.0, parallel_efficiency=1.0)
    for n in (1, 2, 4, 8):
        assert k.comp_scaling(n) == pytest.approx(n)


def test_scaled_copy():
    k = KernelSpec("k", w_comp=2.0, w_bytes=1.0)
    s = k.scaled(0.5, name="k-half")
    assert s.w_comp == 1.0 and s.w_bytes == 0.5 and s.name == "k-half"
    assert k.w_comp == 2.0  # original untouched


def test_affinity_mapping_readonly():
    k = KernelSpec("k", w_comp=1.0, w_bytes=0.0, type_affinity={"denver": 2.0})
    with pytest.raises(TypeError):
        k.type_affinity["denver"] = 3.0  # type: ignore[index]


@given(
    n=st.sampled_from([1, 2, 4, 8, 16]),
    eff=st.floats(min_value=0.5, max_value=1.0),
)
def test_property_scaling_monotone_and_bounded(n, eff):
    k = KernelSpec("k", w_comp=1.0, w_bytes=0.0, parallel_efficiency=eff)
    s = k.comp_scaling(n)
    assert 1.0 <= s <= n + 1e-9
    if n > 1:
        assert s >= k.comp_scaling(n // 2) - 1e-9
