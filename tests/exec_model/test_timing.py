"""Tests for the ground-truth timing model.

These encode the qualitative physics the paper relies on:
compute time scales with f_C, stall time scales with f_M (directly)
and f_C (indirectly), Denver is faster than A57, moldable execution
speeds tasks up sub-linearly.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec_model import GroundTruthTiming, KernelSpec
from repro.hw import jetson_tx2

COMPUTE = KernelSpec("compute", w_comp=2.0, w_bytes=0.002, type_affinity={"denver": 1.5})
MEMORY = KernelSpec("memory", w_comp=0.02, w_bytes=0.08)


@pytest.fixture
def timing(tx2):
    return GroundTruthTiming(tx2.memory)


@pytest.fixture
def denver(tx2):
    return tx2.clusters[0].core_type


@pytest.fixture
def a57(tx2):
    return tx2.clusters[1].core_type


class TestComputeTime:
    def test_inverse_in_core_frequency(self, timing, denver):
        t1 = timing.compute_time(COMPUTE, denver, 1, 1.02)
        t2 = timing.compute_time(COMPUTE, denver, 1, 2.04)
        assert t1 == pytest.approx(2 * t2)

    def test_denver_faster_than_a57(self, timing, denver, a57):
        td = timing.compute_time(COMPUTE, denver, 1, 2.04)
        ta = timing.compute_time(COMPUTE, a57, 1, 2.04)
        # base 2.2x plus affinity 1.5x => 3.3x, matching the paper's
        # "Denver 3.4x faster on BMOD" ballpark
        assert ta / td == pytest.approx(3.3, rel=0.01)

    def test_moldable_speedup_sublinear(self, timing, a57):
        t1 = timing.compute_time(COMPUTE, a57, 1, 2.04)
        t4 = timing.compute_time(COMPUTE, a57, 4, 2.04)
        assert t4 < t1
        assert t1 / t4 < 4.0
        assert t1 / t4 > 3.0


class TestMemoryTime:
    def test_decreases_with_memory_frequency(self, timing, a57):
        slow = timing.memory_time(MEMORY, a57, 1, 2.04, 0.408)
        fast = timing.memory_time(MEMORY, a57, 1, 2.04, 1.866)
        assert fast < slow

    def test_decreases_with_core_frequency_indirect_effect(self, timing, a57):
        slow = timing.memory_time(MEMORY, a57, 1, 0.345, 1.866)
        fast = timing.memory_time(MEMORY, a57, 1, 2.04, 1.866)
        assert fast < slow

    def test_zero_bytes_zero_time(self, timing, a57):
        k = KernelSpec("pure", w_comp=1.0, w_bytes=0.0)
        assert timing.memory_time(k, a57, 1, 2.04, 1.866) == 0.0


class TestBreakdown:
    def test_mb_in_unit_interval(self, timing, denver, a57):
        for k in (COMPUTE, MEMORY):
            for ct in (denver, a57):
                mb = timing.breakdown(k, ct, 1, 2.04, 1.866).memory_boundness
                assert 0.0 <= mb <= 1.0

    def test_memory_kernel_more_bound_than_compute(self, timing, a57):
        mb_mem = timing.breakdown(MEMORY, a57, 1, 2.04, 1.866).memory_boundness
        mb_cmp = timing.breakdown(COMPUTE, a57, 1, 2.04, 1.866).memory_boundness
        assert mb_mem > 0.5 > mb_cmp

    def test_mb_rises_when_memory_slows(self, timing, a57):
        hi = timing.breakdown(MEMORY, a57, 1, 2.04, 1.866).memory_boundness
        lo = timing.breakdown(MEMORY, a57, 1, 2.04, 0.408).memory_boundness
        assert lo > hi

    def test_bw_demand_consistent(self, timing, a57):
        b = timing.breakdown(MEMORY, a57, 1, 2.04, 1.866)
        assert b.bw_demand == pytest.approx(MEMORY.w_bytes / b.total)

    def test_duration_contention_stretches_stall_only(self, timing, a57):
        base = timing.duration(MEMORY, a57, 1, 2.04, 1.866, contention=1.0)
        double = timing.duration(MEMORY, a57, 1, 2.04, 1.866, contention=2.0)
        b = timing.breakdown(MEMORY, a57, 1, 2.04, 1.866)
        assert double - base == pytest.approx(b.t_mem)

    @settings(max_examples=60, deadline=None)
    @given(
        fc=st.sampled_from([0.345, 0.96, 1.57, 2.04]),
        fm=st.sampled_from([0.408, 0.8, 1.331, 1.866]),
        nc=st.sampled_from([1, 2, 4]),
        wc=st.floats(min_value=1e-4, max_value=10.0),
        wb=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_duration_positive_and_monotone_in_freq(self, fc, fm, nc, wc, wb):
        tx2 = jetson_tx2()
        timing = GroundTruthTiming(tx2.memory)
        k = KernelSpec("p", w_comp=wc, w_bytes=wb)
        ct = tx2.clusters[1].core_type
        d = timing.duration(k, ct, nc, fc, fm)
        assert d > 0
        # Raising either frequency can never slow the task down.
        assert timing.duration(k, ct, nc, 2.04, fm) <= d + 1e-12
        assert timing.duration(k, ct, nc, fc, 1.866) <= d + 1e-12


class TestContentionModel:
    def test_no_contention_below_capacity(self, tx2):
        from repro.exec_model import ContentionModel

        cm = ContentionModel(tx2.memory)
        assert cm.factor([1.0, 2.0]) == 1.0

    def test_oversubscription_ratio(self, tx2):
        from repro.exec_model import ContentionModel

        cm = ContentionModel(tx2.memory)
        cap = tx2.memory.bandwidth_capacity
        assert cm.factor([cap, cap]) == pytest.approx(2.0)

    def test_achieved_bw_saturates_at_capacity(self, tx2):
        from repro.exec_model import ContentionModel

        cm = ContentionModel(tx2.memory)
        cap = tx2.memory.bandwidth_capacity
        assert cm.achieved_bandwidth([cap / 4]) == pytest.approx(cap / 4)
        assert cm.achieved_bandwidth([cap, cap]) == pytest.approx(cap)

    def test_capacity_shrinks_with_memory_freq(self, tx2):
        from repro.exec_model import ContentionModel

        cm = ContentionModel(tx2.memory)
        d = [10.0, 10.0]
        f_hi = cm.factor(d)
        tx2.memory.set_freq(0.408)
        f_lo = cm.factor(d)
        assert f_lo > f_hi
