"""Tests for the execution engine: lifecycle, re-timing, energy."""

from __future__ import annotations

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.exec_model import ExecutionEngine, GroundTruthTiming, KernelSpec
from repro.hw import jetson_tx2
from repro.hw.dvfs import DvfsController
from repro.sim import Simulator
from repro.sim.rng import RngStreams

COMPUTE = KernelSpec("compute", w_comp=1.0, w_bytes=0.001)
MEMORY = KernelSpec("memory", w_comp=0.02, w_bytes=0.08)


def make_engine(noise=0.0):
    tx2 = jetson_tx2()
    sim = Simulator()
    eng = ExecutionEngine(sim, tx2, RngStreams(7), duration_noise_sigma=noise)
    return sim, tx2, eng


class TestLifecycle:
    def test_single_activity_duration_matches_timing(self):
        sim, tx2, eng = make_engine()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(COMPUTE, tx2.cores[0])
        sim.run()
        expected = GroundTruthTiming(tx2.memory).duration(
            COMPUTE, tx2.clusters[0].core_type, 1, 2.04, 1.866
        )
        assert done[0] == pytest.approx(expected, rel=1e-9)

    def test_core_marked_busy_then_released(self):
        sim, tx2, eng = make_engine()
        core = tx2.cores[0]
        eng.start_activity(COMPUTE, core)
        assert core.busy
        sim.run()
        assert not core.busy
        assert core.current_activity is None

    def test_busy_core_rejects_second_activity(self):
        sim, tx2, eng = make_engine()
        eng.start_activity(COMPUTE, tx2.cores[0])
        with pytest.raises(SchedulingError):
            eng.start_activity(COMPUTE, tx2.cores[0])

    def test_on_complete_payload_roundtrip(self):
        sim, tx2, eng = make_engine()
        seen = []
        eng.on_complete = lambda a: seen.append(a.payload)
        eng.start_activity(COMPUTE, tx2.cores[0], payload="token")
        sim.run()
        assert seen == ["token"]

    def test_finalize_with_running_activity_raises(self):
        sim, tx2, eng = make_engine()
        eng.start_activity(COMPUTE, tx2.cores[0])
        with pytest.raises(SimulationError):
            eng.finalize()

    def test_abort_all(self):
        sim, tx2, eng = make_engine()
        eng.start_activity(COMPUTE, tx2.cores[0])
        eng.abort_all()
        assert eng.busy_core_count() == 0
        sim.run()  # no stale completion fires
        assert not tx2.cores[0].busy


class TestRetiming:
    def test_freq_drop_midway_stretches_tail(self):
        """Halving frequency halfway through doubles the remaining time."""
        sim, tx2, eng = make_engine()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(COMPUTE, tx2.cores[0])
        timing = GroundTruthTiming(tx2.memory)
        full = timing.duration(COMPUTE, tx2.clusters[0].core_type, 1, 2.04, 1.866)
        # Change frequency exactly halfway (instant DVFS for precision).
        sim.schedule(full / 2, tx2.clusters[0].set_freq, 1.110)
        sim.run()
        tail = timing.duration(COMPUTE, tx2.clusters[0].core_type, 1, 1.110, 1.866)
        assert done[0] == pytest.approx(full / 2 + tail / 2, rel=1e-6)

    def test_memory_freq_change_affects_memory_bound_task(self):
        sim, tx2, eng = make_engine()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(MEMORY, tx2.cores[2])
        timing = GroundTruthTiming(tx2.memory)
        full = timing.duration(MEMORY, tx2.clusters[1].core_type, 1, 2.04, 1.866)
        sim.schedule(full / 2, tx2.memory.set_freq, 0.408)
        sim.run()
        assert done[0] > full * 1.2  # substantially stretched

    def test_memory_freq_change_barely_affects_compute_task(self):
        sim, tx2, eng = make_engine()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(COMPUTE, tx2.cores[0])
        timing = GroundTruthTiming(tx2.memory)
        full = timing.duration(COMPUTE, tx2.clusters[0].core_type, 1, 2.04, 1.866)
        sim.schedule(full / 2, tx2.memory.set_freq, 0.408)
        sim.run()
        assert done[0] == pytest.approx(full, rel=0.05)

    def test_contention_stretches_concurrent_memory_tasks(self):
        # Run 4 memory streams on A57 with memory clocked down so the
        # aggregate demand exceeds capacity.
        sim, tx2, eng = make_engine()
        tx2.memory.set_freq(0.408)
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(MEMORY, tx2.cores[2])
        solo_sim, solo_tx2, solo_eng = make_engine()
        solo_tx2.memory.set_freq(0.408)
        solo_done = []
        solo_eng.on_complete = lambda a: solo_done.append(solo_sim.now)
        solo_eng.start_activity(MEMORY, solo_tx2.cores[2])
        solo_sim.run()
        for cid in (3, 4, 5):
            eng.start_activity(MEMORY, tx2.cores[cid])
        sim.run()
        assert max(done) > solo_done[0] * 1.05

    def test_retime_preserves_progress_invariant(self):
        """Multiple frequency changes: total completion equals the sum of
        per-segment fractional progress."""
        sim, tx2, eng = make_engine()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(COMPUTE, tx2.cores[0])
        timing = GroundTruthTiming(tx2.memory)
        ct = tx2.clusters[0].core_type
        d_hi = timing.duration(COMPUTE, ct, 1, 2.04, 1.866)
        d_lo = timing.duration(COMPUTE, ct, 1, 0.345, 1.866)
        t1 = d_hi * 0.25
        sim.schedule(t1, tx2.clusters[0].set_freq, 0.345)
        t2 = t1 + d_lo * 0.25
        sim.schedule(t2, tx2.clusters[0].set_freq, 2.040)
        sim.run()
        # 25% at hi + 25% at lo + 50% at hi
        assert done[0] == pytest.approx(t2 + 0.5 * d_hi, rel=1e-6)


class TestEnergy:
    def test_energy_accumulates_and_idle_floor(self):
        sim, tx2, eng = make_engine()
        eng.start_activity(COMPUTE, tx2.cores[0])
        sim.run()
        eng.finalize()
        acc = eng.accountant
        assert acc.energy("cpu") > 0
        assert acc.energy("mem") > 0
        # CPU rail should exceed the pure-idle baseline for the elapsed time.
        pm = tx2.power_model
        idle_p = sum(pm.cpu_idle_power(cl) for cl in tx2.clusters)
        assert acc.energy("cpu") > idle_p * sim.now * 0.99

    def test_lower_cpu_freq_lowers_cpu_energy_for_compute(self):
        def run_at(freq):
            sim, tx2, eng = make_engine()
            tx2.clusters[0].set_freq(freq)
            eng.start_activity(COMPUTE, tx2.cores[0])
            sim.run()
            eng.finalize()
            return eng.accountant.energy("cpu")

        # Dynamic V^2*f savings beat the longer runtime for CPU energy
        # of a compute task between max and a mid frequency.
        assert run_at(1.110) < run_at(2.040)

    def test_noise_changes_duration_reproducibly(self):
        def run(seed):
            tx2 = jetson_tx2()
            sim = Simulator()
            eng = ExecutionEngine(
                sim, tx2, RngStreams(seed), duration_noise_sigma=0.05
            )
            done = []
            eng.on_complete = lambda a: done.append(sim.now)
            eng.start_activity(COMPUTE, tx2.cores[0])
            sim.run()
            return done[0]

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_rail_power_reflects_running_tasks(self):
        sim, tx2, eng = make_engine()
        idle = eng.rail_powers()
        eng.start_activity(MEMORY, tx2.cores[2])
        busy = eng.rail_powers()
        assert busy["cpu"] > idle["cpu"]
        assert busy["mem"] > idle["mem"]
