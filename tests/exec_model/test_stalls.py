"""Tests for DVFS transition stalls (opt-in execution cost)."""

from __future__ import annotations

import pytest

from repro.exec_model import ExecutionEngine, GroundTruthTiming, KernelSpec
from repro.hw import jetson_tx2
from repro.hw.dvfs import DvfsController
from repro.sim import Simulator
from repro.sim.rng import RngStreams

K = KernelSpec("st.k", w_comp=0.2, w_bytes=0.002)


def make():
    tx2 = jetson_tx2()
    sim = Simulator()
    eng = ExecutionEngine(sim, tx2, RngStreams(0), duration_noise_sigma=0.0)
    return tx2, sim, eng


class TestEngineStalls:
    def test_stall_delays_completion_exactly(self):
        tx2, sim, eng = make()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(K, tx2.cores[0])
        base = GroundTruthTiming(tx2.memory).duration(
            K, tx2.clusters[0].core_type, 1, 2.04, 1.866
        )
        sim.schedule(base / 2, eng.stall_activities, None, 0.010)
        sim.run()
        assert done[0] == pytest.approx(base + 0.010, rel=1e-9)

    def test_stall_only_affects_selected_cores(self):
        tx2, sim, eng = make()
        done = {}
        eng.on_complete = lambda a: done.setdefault(a.core.core_id, sim.now)
        eng.start_activity(K, tx2.cores[0])  # denver
        eng.start_activity(K, tx2.cores[2])  # a57
        base_d = GroundTruthTiming(tx2.memory).duration(
            K, tx2.clusters[0].core_type, 1, 2.04, 1.866
        )
        sim.schedule(
            base_d / 4, eng.stall_activities, tuple(tx2.clusters[0].cores), 0.02
        )
        sim.run()
        base_a = GroundTruthTiming(tx2.memory).duration(
            K, tx2.clusters[1].core_type, 1, 2.04, 1.866
        )
        assert done[0] == pytest.approx(base_d + 0.02, rel=1e-6)
        assert done[2] == pytest.approx(base_a, rel=1e-6)

    def test_zero_stall_is_noop(self):
        tx2, sim, eng = make()
        eng.start_activity(K, tx2.cores[0])
        eng.stall_activities(None, 0.0)
        pending_before = sim.pending_count()
        assert pending_before >= 1  # just the completion

    def test_overlapping_stalls_take_max(self):
        tx2, sim, eng = make()
        done = []
        eng.on_complete = lambda a: done.append(sim.now)
        eng.start_activity(K, tx2.cores[0])
        base = GroundTruthTiming(tx2.memory).duration(
            K, tx2.clusters[0].core_type, 1, 2.04, 1.866
        )
        t0 = base / 4

        def both():
            eng.stall_activities(None, 0.010)
            eng.stall_activities(None, 0.004)  # subsumed by the first

        sim.schedule(t0, both)
        sim.run()
        assert done[0] == pytest.approx(base + 0.010, rel=1e-6)


class TestControllerStalls:
    def test_stall_callback_fires_on_real_transition(self, sim, tx2):
        ctl = DvfsController(sim, tx2.clusters[0], 1e-4, transition_stall_s=5e-4)
        stalls = []
        ctl.on_stall.append(lambda c, d: stalls.append(d))
        ctl.request(1.11)
        sim.run()
        assert stalls == [5e-4]

    def test_no_stall_on_noop_request(self, sim, tx2):
        ctl = DvfsController(sim, tx2.clusters[0], 1e-4, transition_stall_s=5e-4)
        stalls = []
        ctl.on_stall.append(lambda c, d: stalls.append(d))
        ctl.request(2.04)  # already there
        sim.run()
        assert stalls == []

    def test_executor_wiring_stretches_a_thrashing_run(self):
        """A scheduler that flips the memory frequency on every task
        pays the per-transition stall in wall time."""
        from repro.runtime import Executor, Placement, Scheduler, TaskGraph

        class Thrash(Scheduler):
            name = "thrash"
            _flip = False

            def place(self, task):
                cl = self.ctx.platform.clusters[0]
                self._flip = not self._flip
                return Placement(
                    cluster=cl, n_cores=1,
                    f_m=1.866 if self._flip else 0.408,
                    home_core=cl.cores[0],
                )

        def run(stall):
            g = TaskGraph("thrash")
            prev = None
            for _ in range(20):
                prev = g.add_task(K, deps=[prev] if prev else None)
            ex = Executor(
                jetson_tx2(), Thrash(), seed=7, mem_dvfs_stall_s=stall,
                duration_noise_sigma=0.0, sensor_noise_sigma=0.0,
            )
            return ex.run(g)

        m_free = run(0.0)
        m_costly = run(2e-3)
        assert m_costly.memory_freq_transitions >= 19
        # Each of the ~20 transitions stalls the running task ~2 ms.
        extra = m_costly.makespan - m_free.makespan
        assert extra > 15 * 2e-3
