"""Incremental vs strict re-timing: bit-identical, by construction.

The execution engine's incremental path re-times only the activities
whose breakdown inputs changed (plus everything when the global
contention factor moves); ``strict_retime=True`` re-times every running
activity on every state change.  Because materialisation skips by
value, both must produce *byte-identical* results — same completion
instants, same exact energies, same trace — under any interleaving of
DVFS changes, completions, stalls, and fault-driven core unplugs.

Two layers of evidence:

- an engine-level property test driving both engines through the same
  randomly generated op script (Hypothesis);
- full ``Executor`` runs — plain, cache-off, vectorized-forced, and
  under fault campaigns — compared field-by-field including the event
  trace.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec_model import ExecutionEngine, KernelSpec
from repro.hw import jetson_tx2
from repro.sim import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

KERNELS = (
    KernelSpec("eq.compute", w_comp=0.9, w_bytes=0.002),
    KernelSpec("eq.memory", w_comp=0.05, w_bytes=0.06),
    KernelSpec("eq.mixed", w_comp=0.3, w_bytes=0.02,
               type_affinity={"denver": 1.25}),
)


# ----------------------------------------------------------------------
# Engine-level property test
# ----------------------------------------------------------------------
def _fresh(strict: bool):
    tx2 = jetson_tx2()
    sim = Simulator()
    eng = ExecutionEngine(
        sim, tx2, RngStreams(13), duration_noise_sigma=0.02,
        strict_retime=strict,
    )
    done: list[tuple[float, int]] = []
    eng.on_complete = lambda a: done.append((sim.now, a.slot))
    return sim, tx2, eng, done


def _apply(op, sim, tx2, eng):
    """Replay one scripted op; guards keep the script valid on any
    engine state (both engines share state by induction, so the guards
    take the same branch on both)."""
    kind = op[0]
    if kind == "cpu_freq":
        cl = tx2.clusters[op[1] % len(tx2.clusters)]
        cl.set_freq(cl.opps.at(op[2] % len(cl.opps)))
    elif kind == "mem_freq":
        mem = tx2.memory
        mem.set_freq(mem.opps.at(op[1] % len(mem.opps)))
    elif kind == "start":
        core = tx2.cores[op[1] % len(tx2.cores)]
        if not core.busy and core.online:
            eng.start_activity(KERNELS[op[2] % len(KERNELS)], core)
    elif kind == "stall":
        if op[1] is None:
            eng.stall_activities(None, op[2])
        else:
            core = tx2.cores[op[1] % len(tx2.cores)]
            eng.stall_activities((core,), op[2])
    elif kind == "unplug":
        core = tx2.cores[op[1] % len(tx2.cores)]
        core.online = not core.online
    elif kind == "advance":
        sim.run(until=sim.now + op[1])
    else:  # pragma: no cover - script generator bug
        raise AssertionError(kind)


_OPS = st.one_of(
    st.tuples(st.just("cpu_freq"), st.integers(0, 7), st.integers(0, 15)),
    st.tuples(st.just("mem_freq"), st.integers(0, 15)),
    st.tuples(st.just("start"), st.integers(0, 7), st.integers(0, 7)),
    st.tuples(
        st.just("stall"),
        st.one_of(st.none(), st.integers(0, 7)),
        st.sampled_from((1e-4, 3e-4, 2e-3)),
    ),
    st.tuples(st.just("unplug"), st.integers(0, 7)),
    st.tuples(st.just("advance"), st.sampled_from((5e-4, 2e-3, 8e-3))),
)


@settings(max_examples=30, deadline=None)
@given(st.lists(_OPS, min_size=4, max_size=40))
def test_property_incremental_equals_strict(script):
    """Any interleaving of DVFS moves, starts, stalls, unplugs and time
    advances produces byte-identical completions and exact energies."""
    results = []
    for strict in (False, True):
        sim, tx2, eng, done = _fresh(strict)
        for op in script:
            _apply(op, sim, tx2, eng)
        sim.run()  # drain: all activities and stall-ends fire
        eng.finalize()
        acc = eng.accountant
        results.append(
            (sim.now, tuple(done), acc.energy("cpu"), acc.energy("mem"))
        )
    incremental, strict_ref = results
    assert incremental == strict_ref  # ==, not approx: bit-identical


# ----------------------------------------------------------------------
# Full-executor equivalence (metrics + trace), incl. fault campaigns
# ----------------------------------------------------------------------
def _metrics_tuple(m):
    return (
        m.makespan, m.cpu_energy, m.mem_energy,
        m.cpu_energy_exact, m.mem_energy_exact,
        m.tasks_executed, m.steals,
        m.cluster_freq_transitions, m.memory_freq_transitions,
    )


def _run_executor(strict: bool, *, faults=None, cache=8192, vec_min=None):
    from repro.bench.runner import BenchConfig
    from repro.runtime.executor import Executor
    from repro.schedulers.registry import make_scheduler, needs_suite
    from repro.workloads.registry import build_workload

    cfg = BenchConfig(scale=0.25, seed=5, workload_seed=17)
    name = "JOSS"
    suite = cfg.suite() if needs_suite(name) else None
    sched = make_scheduler(name, suite, **cfg.scheduler_kwargs)
    graph = build_workload("hd-small", scale=cfg.scale, seed=cfg.workload_seed)
    tracer = Tracer()
    ex = Executor(
        cfg.platform_factory(), sched, seed=cfg.seed, tracer=tracer,
        faults=faults, engine_cache_size=cache, strict_retime=strict,
    )
    if vec_min is not None:
        ex.engine.vector_min = vec_min
    m = ex.run(graph)
    trace = tuple((r.time, r.category, tuple(sorted(r.payload.items())))
                  for r in tracer)
    return _metrics_tuple(m), trace


@pytest.mark.parametrize("cache", [8192, 0])
def test_executor_incremental_equals_strict(cache):
    inc = _run_executor(False, cache=cache)
    ref = _run_executor(True, cache=cache)
    assert inc == ref


def test_executor_vectorized_equals_scalar():
    """Forcing every materialisation through the NumPy path changes
    nothing — the two code paths are bit-identical."""
    scalar = _run_executor(False)
    vec = _run_executor(False, vec_min=1)
    strict_vec = _run_executor(True, vec_min=1)
    assert scalar == vec == strict_vec


def test_executor_equivalence_under_faults():
    """Fault campaigns (core unplug mid-run, stuck DVFS) exercise the
    engine's widening rules; strict and incremental must still agree on
    every metric and every trace record."""
    from repro.faults.campaigns import builtin_campaigns

    base, _ = _run_executor(False)
    makespan = base[0]
    campaigns = builtin_campaigns(makespan, seed=3)
    for name in ("core-unplug", "dvfs-stuck"):
        campaign = campaigns[name]
        inc = _run_executor(False, faults=campaign)
        ref = _run_executor(True, faults=campaign)
        assert inc == ref, name
