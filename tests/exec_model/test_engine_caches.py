"""The engine-layer hot-path caches must be invisible: every cached
value equals what recomputation would produce, and a run with caching
disabled (``cache_size=0``) is indistinguishable from the default."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec_model.engine import ExecutionEngine
from repro.exec_model.kernels import KernelSpec
from repro.exec_model.timing import GroundTruthTiming
from repro.hw.platform import jetson_tx2
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams


@settings(max_examples=40, deadline=None)
@given(
    f_c=st.sampled_from([0.345, 0.960, 1.267, 2.035]),
    f_m=st.sampled_from([0.800, 1.331, 1.866]),
    n_cores=st.integers(min_value=1, max_value=4),
    w_comp=st.floats(min_value=0.01, max_value=2.0),
    w_bytes=st.floats(min_value=0.0, max_value=0.05),
)
def test_property_timing_cache_hit_equals_miss(f_c, f_m, n_cores, w_comp, w_bytes):
    """Cached breakdowns are bit-identical to uncached recomputation
    for arbitrary kernels and frequencies."""
    platform = jetson_tx2()
    kernel = KernelSpec("prop.k", w_comp=w_comp, w_bytes=w_bytes)
    ct = platform.clusters[0].core_type
    cached = GroundTruthTiming(platform.memory, cache_size=64)
    uncached = GroundTruthTiming(platform.memory, cache_size=0)
    first = cached.breakdown(kernel, ct, n_cores, f_c, f_m)
    hit = cached.breakdown(kernel, ct, n_cores, f_c, f_m)  # cache hit
    ref = uncached.breakdown(kernel, ct, n_cores, f_c, f_m)
    for b in (first, hit):
        assert b.t_comp == ref.t_comp
        assert b.t_mem == ref.t_mem
        assert b.bw_demand == ref.bw_demand


def _engine(cache_size):
    sim = Simulator()
    platform = jetson_tx2()
    engine = ExecutionEngine(
        sim, platform, RngStreams(seed=11), cache_size=cache_size
    )
    kernels = [
        KernelSpec(f"c.k{i}", w_comp=0.2 + 0.05 * i, w_bytes=0.004 * (i + 1))
        for i in range(4)
    ]
    for i, core in enumerate(platform.cores[:4]):
        engine.start_activity(kernels[i], core)
    return sim, platform, engine


def _drive(sim, platform, engine, steps=60):
    """Interleave DVFS flips with event processing and record the full
    observable state after every step."""
    observed = []
    freqs_c = platform.clusters[0].opps.as_array()
    freqs_m = platform.memory.opps.as_array()
    for i in range(steps):
        if i % 3 == 0:
            platform.clusters[0].set_freq(float(freqs_c[i % len(freqs_c)]))
        if i % 5 == 0:
            platform.memory.set_freq(float(freqs_m[i % len(freqs_m)]))
        sim.step()
        observed.append(
            (
                sim.now,
                tuple(
                    (a.kernel.name, a.rate, a.frac_remaining, a.bw_achieved)
                    for a in engine.activities
                ),
                tuple(sorted(engine.rail_powers().items())),
            )
        )
    return observed


def test_cached_engine_equals_uncached_engine():
    """Same seeds, same DVFS storm: the default engine and the
    cache-disabled engine must observe identical timelines, rates and
    rail powers at every step."""
    runs = []
    for cache_size in (8192, 0):
        sim, platform, engine = _engine(cache_size)
        runs.append(_drive(sim, platform, engine))
    assert runs[0] == runs[1]


def test_rail_power_cache_sees_hot_unplug():
    """Flipping ``Core.online`` bypasses every callback — the
    self-validating cache key must still notice (fault injection's
    hot-unplug path)."""
    sim, platform, engine = _engine(8192)
    p_before = engine.rail_powers()
    idle_core = platform.cores[-1]  # no activity started on it
    assert idle_core.current_activity is None
    idle_core.online = False
    p_after = engine.rail_powers()
    assert p_after["cpu"] < p_before["cpu"]  # leakage gone, cache missed
    idle_core.online = True
    assert engine.rail_powers() == pytest.approx(p_before)
