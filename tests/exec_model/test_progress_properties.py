"""Property tests: task progress is conserved under frequency churn.

Whatever sequence of frequency changes happens mid-flight, a task's
completion time must equal the piecewise-analytic integral of its
progress rate — re-timing must neither lose nor duplicate work.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exec_model import ExecutionEngine, GroundTruthTiming, KernelSpec
from repro.hw import jetson_tx2
from repro.sim import Simulator
from repro.sim.rng import RngStreams

KERNEL = KernelSpec("p.k", w_comp=0.4, w_bytes=0.01)


@settings(max_examples=30, deadline=None)
@given(
    switches=st.lists(
        st.tuples(
            st.floats(min_value=0.02, max_value=0.98),   # progress point
            st.sampled_from([0.345, 0.806, 1.270, 2.040]),  # new f_C
        ),
        min_size=0,
        max_size=5,
        unique_by=lambda sw: round(sw[0], 3),
    )
)
def test_property_completion_matches_piecewise_integral(switches):
    tx2 = jetson_tx2()
    sim = Simulator()
    engine = ExecutionEngine(sim, tx2, RngStreams(0), duration_noise_sigma=0.0)
    timing = GroundTruthTiming(tx2.memory)
    ct = tx2.clusters[0].core_type
    done: list[float] = []
    engine.on_complete = lambda a: done.append(sim.now)
    engine.start_activity(KERNEL, tx2.cores[0])

    # Schedule frequency changes at given *progress fractions*,
    # translating to times analytically as we go.
    switches = sorted(switches)
    t = 0.0
    prog = 0.0
    freq = 2.040
    for frac, new_freq in switches:
        if frac <= prog:
            continue
        d_full = timing.duration(KERNEL, ct, 1, freq, 1.866)
        t += (frac - prog) * d_full
        prog = frac
        sim.schedule_at(t, tx2.clusters[0].set_freq, new_freq)
        freq = new_freq
    d_full = timing.duration(KERNEL, ct, 1, freq, 1.866)
    expected_end = t + (1.0 - prog) * d_full

    sim.run()
    assert len(done) == 1
    assert done[0] == pytest.approx(expected_end, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000))
def test_property_two_tasks_total_work_conserved(seed):
    """Concurrent tasks re-timed by each other's start/stop still each
    complete exactly once, with monotone completion times."""
    import numpy as np

    rng = np.random.default_rng(seed)
    tx2 = jetson_tx2()
    sim = Simulator()
    engine = ExecutionEngine(sim, tx2, RngStreams(seed), duration_noise_sigma=0.0)
    done: list[str] = []
    engine.on_complete = lambda a: done.append(a.kernel.name)
    kernels = [
        KernelSpec(f"p.{i}", w_comp=float(rng.uniform(0.01, 0.3)),
                   w_bytes=float(rng.uniform(0.001, 0.05)))
        for i in range(4)
    ]
    for i, k in enumerate(kernels):
        sim.schedule(
            float(rng.uniform(0, 0.05)),
            lambda k=k, i=i: engine.start_activity(k, tx2.cores[2 + i]),
        )
    sim.run()
    assert sorted(done) == sorted(k.name for k in kernels)
