"""Tests for run metrics and kernel statistics."""

from __future__ import annotations

import pytest

from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, TaskGraph
from repro.runtime.metrics import KernelStats, RunMetrics
from repro.schedulers import GrwsScheduler

K = KernelSpec("m.k", w_comp=0.1, w_bytes=0.002)


class TestKernelStats:
    def test_record_and_means(self):
        ks = KernelStats()
        ks.record(1.0, "a57x1", wait=0.2)
        ks.record(3.0, "denverx1", wait=0.4)
        assert ks.invocations == 2
        assert ks.mean_time == pytest.approx(2.0)
        assert ks.mean_wait == pytest.approx(0.3)
        assert ks.placements == {"a57x1": 1, "denverx1": 1}

    def test_empty_means_zero(self):
        ks = KernelStats()
        assert ks.mean_time == 0.0
        assert ks.mean_wait == 0.0

    def test_negative_wait_clamped(self):
        ks = KernelStats()
        ks.record(1.0, "x", wait=-0.5)
        assert ks.total_wait == 0.0


class TestRunMetrics:
    def test_totals_and_fractions(self):
        m = RunMetrics(scheduler="S", workload="W")
        m.cpu_energy, m.mem_energy = 2.0, 1.0
        m.makespan, m.sampling_time = 4.0, 1.0
        assert m.total_energy == pytest.approx(3.0)
        assert m.sampling_fraction == pytest.approx(0.25)

    def test_zero_makespan_fraction(self):
        assert RunMetrics().sampling_fraction == 0.0

    def test_summary_renders(self):
        m = RunMetrics(scheduler="JOSS", workload="slu")
        m.makespan, m.cpu_energy, m.mem_energy = 1.0, 2.0, 0.5
        s = m.summary()
        assert "JOSS" in s and "slu" in s and "2.500" in s

    def test_kernel_stats_autocreate(self):
        m = RunMetrics()
        ks = m.kernel_stats("k")
        assert m.kernel_stats("k") is ks


class TestWaitTimesEndToEnd:
    def test_contended_queue_records_waits(self):
        # 30 root tasks on 6 cores: most wait in queues before starting.
        g = TaskGraph("wait")
        for _ in range(30):
            g.add_task(K)
        ex = Executor(jetson_tx2(), GrwsScheduler(), seed=4)
        m = ex.run(g)
        ks = m.per_kernel["m.k"]
        assert ks.total_wait > 0
        assert ks.mean_wait < m.makespan

    def test_serial_chain_waits_are_tiny(self):
        g = TaskGraph("serial")
        prev = None
        for _ in range(10):
            prev = g.add_task(K, deps=[prev] if prev else None)
        ex = Executor(jetson_tx2(), GrwsScheduler(), seed=4)
        m = ex.run(g)
        ks = m.per_kernel["m.k"]
        # A dependent is dispatched the instant its parent completes.
        assert ks.mean_wait < ks.mean_time * 0.05
