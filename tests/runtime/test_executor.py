"""End-to-end tests of the executor with simple schedulers."""

from __future__ import annotations

import math

import pytest

from repro.exec_model import GroundTruthTiming, KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, Placement, Scheduler, TaskGraph
from repro.schedulers import GrwsScheduler

COMPUTE = KernelSpec("compute", w_comp=0.3, w_bytes=0.002)
MEMORY = KernelSpec("memory", w_comp=0.01, w_bytes=0.05)


class PinnedScheduler(Scheduler):
    """Test helper: every task gets the same fixed placement."""

    name = "pinned"

    def __init__(self, cluster_idx=0, n_cores=1, f_c=None, f_m=None):
        super().__init__()
        self.cluster_idx = cluster_idx
        self.n_cores = n_cores
        self.f_c = f_c
        self.f_m = f_m

    def place(self, task):
        cl = self.ctx.platform.clusters[self.cluster_idx]
        return Placement(cluster=cl, n_cores=self.n_cores, f_c=self.f_c, f_m=self.f_m)


def fan(kernel=COMPUTE, width=8, depth=3):
    g = TaskGraph("fan")
    prev = None
    for _ in range(depth):
        layer = [g.add_task(kernel, deps=[prev] if prev else None) for _ in range(width)]
        prev = g.add_task(kernel, deps=layer)
    return g


def run(graph, scheduler, seed=1, **kw):
    ex = Executor(jetson_tx2(), scheduler, seed=seed, **kw)
    return ex, ex.run(graph)


class TestBasicExecution:
    def test_all_tasks_complete(self):
        ex, m = run(fan(), GrwsScheduler())
        assert m.tasks_executed == len(ex.graph.tasks)
        assert ex.graph.all_done()
        assert m.makespan > 0

    def test_dependencies_respected(self):
        ex, m = run(fan(), GrwsScheduler())
        for t in ex.graph.tasks:
            for d in t.dependents:
                assert d.start_time >= t.end_time - 1e-9

    def test_deterministic_given_seed(self):
        _, m1 = run(fan(), GrwsScheduler(), seed=5)
        _, m2 = run(fan(), GrwsScheduler(), seed=5)
        assert m1.makespan == m2.makespan
        assert m1.total_energy == m2.total_energy

    def test_different_seed_differs(self):
        _, m1 = run(fan(), GrwsScheduler(), seed=5)
        _, m2 = run(fan(), GrwsScheduler(), seed=6)
        assert m1.makespan != m2.makespan

    def test_sensor_energy_close_to_exact(self):
        _, m = run(fan(width=10, depth=5), GrwsScheduler())
        assert m.cpu_energy == pytest.approx(m.cpu_energy_exact, rel=0.05)
        assert m.mem_energy == pytest.approx(m.mem_energy_exact, rel=0.05)

    def test_kernel_stats_recorded(self):
        ex, m = run(fan(), GrwsScheduler())
        ks = m.per_kernel["compute"]
        assert ks.invocations == m.tasks_executed
        assert ks.mean_time > 0

    def test_grws_uses_both_clusters(self):
        _, m = run(fan(width=12, depth=4), GrwsScheduler())
        keys = set(m.per_kernel["compute"].placements)
        assert any(k.startswith("denver") for k in keys)
        assert any(k.startswith("a57") for k in keys)

    def test_stall_detection_raises_on_max_events(self):
        from repro.errors import SchedulingError

        g = fan(width=20, depth=5)
        ex = Executor(jetson_tx2(), GrwsScheduler(), seed=1)
        with pytest.raises(SchedulingError):
            ex.run(g, max_events=5)


class TestPinnedPlacement:
    def test_single_cluster_only(self):
        sched = PinnedScheduler(cluster_idx=1)
        ex, m = run(fan(), sched)
        keys = m.per_kernel["compute"].placements
        assert all(k.startswith("a57") for k in keys)

    def test_moldable_partitions_join(self):
        """A 2-core moldable task on Denver must engage both cores and
        finish in about half the single-core time."""
        sched1 = PinnedScheduler(cluster_idx=0, n_cores=1)
        g1 = TaskGraph("solo")
        g1.add_task(COMPUTE)
        _, m1 = run(g1, sched1, duration_noise_sigma=0.0)

        sched2 = PinnedScheduler(cluster_idx=0, n_cores=2)
        g2 = TaskGraph("mold")
        g2.add_task(COMPUTE)
        _, m2 = run(g2, sched2, duration_noise_sigma=0.0)
        ratio = m1.makespan / m2.makespan
        assert 1.7 < ratio <= 2.01

    def test_moldable_placement_key(self):
        sched = PinnedScheduler(cluster_idx=1, n_cores=4)
        g = TaskGraph("m4")
        g.add_task(COMPUTE)
        _, m = run(g, sched)
        assert m.per_kernel["compute"].placements == {"a57x4": 1}

    def test_freq_request_applied_lowers_energy(self):
        g = fan(COMPUTE, width=6, depth=3)
        _, m_hi = run(g, PinnedScheduler(cluster_idx=0, f_c=2.04))
        g2 = fan(COMPUTE, width=6, depth=3)
        _, m_lo = run(g2, PinnedScheduler(cluster_idx=0, f_c=1.11))
        assert m_lo.makespan > m_hi.makespan  # slower
        assert m_lo.cpu_energy < m_hi.cpu_energy  # but cheaper on CPU rail
        assert m_lo.cluster_freq_transitions >= 1

    def test_memory_freq_request_applied(self):
        g = fan(COMPUTE, width=6, depth=2)
        ex, m = run(g, PinnedScheduler(cluster_idx=0, f_m=0.8))
        assert m.memory_freq_transitions >= 1
        assert ex.platform.memory.freq == 0.8


class TestStealing:
    def test_steals_happen_under_imbalance(self):
        _, m = run(fan(width=16, depth=3), GrwsScheduler())
        assert m.steals > 0

    def test_pinned_no_cross_cluster_execution(self):
        """Type-restricted stealing keeps tasks on the chosen cluster
        even under load imbalance."""
        sched = PinnedScheduler(cluster_idx=0)
        _, m = run(fan(width=16, depth=3), sched)
        assert set(m.per_kernel["compute"].placements) == {"denverx1"}
