"""Tests for task DAG construction and release semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.exec_model import KernelSpec
from repro.runtime import TaskGraph, TaskState

K = KernelSpec("k", w_comp=1.0, w_bytes=0.0)
K2 = KernelSpec("k2", w_comp=1.0, w_bytes=0.1)


def chain(n):
    g = TaskGraph("chain")
    prev = None
    for _ in range(n):
        prev = g.add_task(K, deps=[prev] if prev else None)
    return g


def test_roots_and_len():
    g = TaskGraph()
    a = g.add_task(K)
    b = g.add_task(K, deps=[a])
    g.add_task(K2, deps=[a, b])
    assert len(g) == 3
    assert g.roots() == [a]


def test_backward_edge_rejected():
    """Dependencies must already exist in the graph (forward edges only),
    which structurally guarantees acyclicity."""
    g = TaskGraph()
    g.add_task(K)
    other = TaskGraph()
    for _ in range(5):
        other.add_task(K)
    future = other.tasks[-1]  # tid 4 >= the next tid g would assign (1)
    with pytest.raises(WorkloadError):
        g.add_task(K, deps=[future])


def test_kernels_and_counts():
    g = TaskGraph()
    g.add_task(K)
    g.add_task(K2)
    g.add_task(K)
    assert [k.name for k in g.kernels()] == ["k", "k2"]
    assert g.kernel_counts() == {"k": 2, "k2": 1}


def test_critical_path_chain():
    assert chain(7).critical_path_length() == 7
    assert chain(7).dop() == pytest.approx(1.0)


def test_critical_path_fan():
    g = TaskGraph()
    root = g.add_task(K)
    mids = [g.add_task(K, deps=[root]) for _ in range(8)]
    g.add_task(K, deps=mids)
    assert g.critical_path_length() == 3
    assert g.dop() == pytest.approx(10 / 3)


def test_validate_empty_raises():
    with pytest.raises(WorkloadError):
        TaskGraph().validate()


def test_release_dependents():
    g = TaskGraph()
    a = g.add_task(K)
    b = g.add_task(K, deps=[a])
    c = g.add_task(K, deps=[a, b])
    a.mark_ready(0.0)
    a.mark_running(0.0)
    a.mark_done(1.0)
    ready = list(g.release_dependents(a, 1.0))
    assert ready == [b]
    assert c.deps_remaining == 1
    b.mark_running(1.0)
    b.mark_done(2.0)
    assert list(g.release_dependents(b, 2.0)) == [c]
    assert c.state is TaskState.READY


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=8))
def test_property_dop_bounds(depth, width):
    """dop is between 1 and total/critical-path by construction."""
    g = TaskGraph()
    prev = None
    for _ in range(depth):
        layer = [g.add_task(K, deps=[prev] if prev else None) for _ in range(width)]
        prev = g.add_task(K, deps=layer)
    dop = g.dop()
    assert dop >= 1.0 - 1e-9
    assert dop <= len(g)
