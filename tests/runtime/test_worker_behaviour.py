"""Focused tests for worker/stealing/moldable mechanics."""

from __future__ import annotations

import pytest

from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, Placement, Scheduler, TaskGraph
from repro.sim.trace import Tracer

WORK = KernelSpec("w", w_comp=0.1, w_bytes=0.001)
BIG = KernelSpec("big", w_comp=1.0, w_bytes=0.001)


class HomePinned(Scheduler):
    """Places every task on one specific core's queue."""

    name = "home-pinned"

    def __init__(self, core_id=0, n_cores=1, allow_steal=True):
        super().__init__()
        self.core_id = core_id
        self.n_cores = n_cores
        self.allow_steal = allow_steal

    def place(self, task):
        core = self.ctx.platform.cores[self.core_id]
        return Placement(
            cluster=core.cluster, n_cores=self.n_cores, home_core=core
        )

    def steal_candidates(self, core):
        if not self.allow_steal:
            return []
        return super().steal_candidates(core)


class TestStealing:
    def test_same_type_steals_drain_a_hot_queue(self):
        """Tasks homed on one a57 core spread over the a57 cluster."""
        g = TaskGraph("hot")
        for _ in range(20):
            g.add_task(WORK)
        sched = HomePinned(core_id=2)  # an a57 core
        ex = Executor(jetson_tx2(), sched, seed=1)
        m = ex.run(g)
        assert m.steals > 0
        # All work stayed on the a57 cluster (type-preserving steals).
        assert set(m.per_kernel["w"].placements) == {"a57x1"}

    def test_no_steal_policy_serialises(self):
        g1 = TaskGraph("s1")
        for _ in range(8):
            g1.add_task(WORK)
        ex1 = Executor(jetson_tx2(), HomePinned(core_id=2, allow_steal=False), seed=1)
        m_serial = ex1.run(g1)
        g2 = TaskGraph("s2")
        for _ in range(8):
            g2.add_task(WORK)
        ex2 = Executor(jetson_tx2(), HomePinned(core_id=2, allow_steal=True), seed=1)
        m_steal = ex2.run(g2)
        assert m_serial.steals == 0
        assert m_serial.makespan > m_steal.makespan * 2

    def test_stolen_flag_set(self):
        g = TaskGraph("flag")
        tasks = [g.add_task(WORK) for _ in range(12)]
        ex = Executor(jetson_tx2(), HomePinned(core_id=2), seed=1)
        ex.run(g)
        stolen = [t for t in tasks if t.meta.get("stolen")]
        assert stolen  # at least one was taken by a peer


class TestMoldableMechanics:
    def test_partitions_spread_across_cluster(self):
        """A 4-core moldable task occupies all four a57 cores at once."""
        tracer = Tracer(categories=["activity-start"])
        g = TaskGraph("mold")
        g.add_task(BIG)
        sched = HomePinned(core_id=2, n_cores=4)
        ex = Executor(jetson_tx2(), sched, seed=1, tracer=tracer)
        ex.run(g)
        cores_used = {r.payload["core"] for r in tracer.records("activity-start")}
        assert cores_used == {2, 3, 4, 5}

    def test_partition_stagger_under_load(self):
        """Moldable partitions can start staggered when peers are busy,
        and the task still joins correctly."""
        g = TaskGraph("stagger")
        blockers = [g.add_task(BIG) for _ in range(3)]  # occupy peers
        g.add_task(BIG)  # moldable arrives while peers busy
        sched = HomePinned(core_id=2, n_cores=4)
        ex = Executor(jetson_tx2(), sched, seed=1)
        m = ex.run(g)
        assert m.tasks_executed == 4
        last = g.tasks[-1]
        assert last.partitions_remaining == 0
        # exec_time (longest partition) <= duration (with stagger).
        assert last.exec_time <= last.duration + 1e-12

    def test_moldable_clamped_to_cluster_size(self):
        """Requesting more cores than the cluster has clamps safely."""

        class OverAsk(Scheduler):
            name = "over"

            def place(self, task):
                cl = self.ctx.platform.clusters[0]  # denver: 2 cores
                return Placement(cluster=cl, n_cores=2)

        g = TaskGraph("clamp")
        g.add_task(BIG)
        ex = Executor(jetson_tx2(), OverAsk(), seed=1)
        ex.run(g)
        assert g.tasks[0].partitions_total == 2


class TestWakeCoalescing:
    def test_no_pending_events_after_completion(self):
        g = TaskGraph("drain")
        for _ in range(10):
            g.add_task(WORK)
        ex = Executor(jetson_tx2(), HomePinned(core_id=2), seed=1)
        ex.run(g)
        assert ex.sim.pending_count() == 0

    def test_idle_workers_survive_spurious_wakes(self):
        g = TaskGraph("spurious")
        a = g.add_task(WORK)
        g.add_task(WORK, deps=[a])
        ex = Executor(jetson_tx2(), HomePinned(core_id=0), seed=1)
        m = ex.run(g)
        assert m.tasks_executed == 2
