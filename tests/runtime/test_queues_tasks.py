"""Tests for work queues, tasks and placements."""

from __future__ import annotations

import math

import pytest

from repro.errors import SchedulingError
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Placement, TaskGraph, TaskState, WorkQueue
from repro.runtime.task import Task, TaskPartition

K = KernelSpec("k", w_comp=1.0, w_bytes=0.0)


class TestWorkQueue:
    def test_owner_fifo(self):
        q = WorkQueue(0)
        a, b = Task(0, K), Task(1, K)
        q.push(a)
        q.push(b)
        assert q.pop_own() is a
        assert q.pop_own() is b
        assert q.pop_own() is None

    def test_thief_takes_from_back(self):
        q = WorkQueue(0)
        a, b = Task(0, K), Task(1, K)
        q.push(a)
        q.push(b)
        assert q.pop_steal() is b
        assert q.steals_suffered == 1

    def test_push_front_takes_priority(self):
        q = WorkQueue(0)
        a, b = Task(0, K), Task(1, K)
        q.push(a)
        q.push_front(b)
        assert q.pop_own() is b

    def test_peek_types_and_remove(self):
        q = WorkQueue(0)
        a = Task(0, K)
        b = Task(1, KernelSpec("other", w_comp=1.0, w_bytes=0.0))
        q.push(a)
        q.push(b)
        assert q.peek_types() == ["k", "other"]
        assert q.remove(b)
        assert not q.remove(b)
        assert len(q) == 1

    def test_steal_from_empty(self):
        q = WorkQueue(0)
        assert q.pop_steal() is None
        assert q.steals_suffered == 0


class TestTaskStates:
    def test_lifecycle(self):
        t = Task(0, K)
        assert t.state is TaskState.PENDING
        t.mark_ready(1.0)
        t.mark_running(2.0)
        t.mark_done(5.0)
        assert t.duration == pytest.approx(3.0)

    def test_ready_with_pending_deps_rejected(self):
        t = Task(0, K)
        t.deps_remaining = 1
        with pytest.raises(SchedulingError):
            t.mark_ready(0.0)

    def test_done_without_running_rejected(self):
        t = Task(0, K)
        t.mark_ready(0.0)
        with pytest.raises(SchedulingError):
            t.mark_done(1.0)

    def test_mark_running_idempotent_for_partitions(self):
        """Second partition starting later must not reset start_time."""
        t = Task(0, K)
        t.mark_ready(0.0)
        t.mark_running(1.0)
        t.mark_running(2.0)
        assert t.start_time == 1.0

    def test_duration_nan_before_completion(self):
        assert math.isnan(Task(0, K).duration)

    def test_partition_proxies_kernel(self):
        t = Task(0, K)
        p = TaskPartition(t, 1)
        assert p.kernel is K


class TestPlacement:
    def test_describe_format(self, tx2):
        p = Placement(cluster=tx2.clusters[0], n_cores=2, f_c=1.11, f_m=0.8)
        assert p.describe() == "<denver, 2, 1.110, 0.800>"

    def test_unset_freqs_render_dash(self, tx2):
        p = Placement(cluster=tx2.clusters[1])
        assert p.describe() == "<a57, 1, -, ->"

    def test_too_many_cores_rejected(self, tx2):
        with pytest.raises(SchedulingError):
            Placement(cluster=tx2.clusters[0], n_cores=3)

    def test_zero_cores_rejected(self, tx2):
        with pytest.raises(SchedulingError):
            Placement(cluster=tx2.clusters[0], n_cores=0)

    def test_foreign_home_core_rejected(self, tx2):
        with pytest.raises(SchedulingError):
            Placement(cluster=tx2.clusters[0], home_core=tx2.clusters[1].cores[0])
