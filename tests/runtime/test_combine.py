"""Tests for multi-application DAG combination."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, TaskGraph
from repro.schedulers import GrwsScheduler
from repro.workloads import build_workload

K1 = KernelSpec("c.a", w_comp=0.05, w_bytes=0.001)
K2 = KernelSpec("c.b", w_comp=0.01, w_bytes=0.01)


def chain(kernel, n):
    g = TaskGraph(kernel.name)
    prev = None
    for _ in range(n):
        prev = g.add_task(kernel, deps=[prev] if prev else None)
    return g


class TestCombine:
    def test_sizes_add_up(self):
        merged = TaskGraph.combine([chain(K1, 5), chain(K2, 7)])
        assert len(merged) == 12
        assert merged.kernel_counts() == {"c.a": 5, "c.b": 7}

    def test_structure_preserved(self):
        merged = TaskGraph.combine([chain(K1, 5), chain(K2, 7)])
        # Two independent chains: two roots, critical path = longest.
        assert len(merged.roots()) == 2
        assert merged.critical_path_length() == 7

    def test_inputs_unmodified(self):
        a = chain(K1, 4)
        TaskGraph.combine([a, chain(K2, 3)])
        assert len(a) == 4
        assert all(t.deps_remaining in (0, 1) for t in a.tasks)

    def test_name(self):
        assert TaskGraph.combine([chain(K1, 2), chain(K2, 2)]).name == "c.a+c.b"
        assert TaskGraph.combine([chain(K1, 2)], name="solo").name == "solo"

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            TaskGraph.combine([])

    def test_combined_workloads_execute(self):
        merged = TaskGraph.combine(
            [build_workload("mm-256", seed=1), build_workload("mc-4096", seed=2)]
        )
        ex = Executor(jetson_tx2(), GrwsScheduler(), seed=3)
        m = ex.run(merged)
        assert m.tasks_executed == len(merged)

    def test_fan_structure_dependencies_preserved(self):
        g = TaskGraph("fan")
        root = g.add_task(K1)
        mids = [g.add_task(K2, deps=[root]) for _ in range(3)]
        g.add_task(K1, deps=mids)
        merged = TaskGraph.combine([g, g])
        assert len(merged) == 10
        assert merged.critical_path_length() == 3
        assert len(merged.roots()) == 2
