"""Tests for run-metrics serialisation and the CLI compare command."""

from __future__ import annotations

import json

import pytest

from repro.bench.runner import BenchConfig, run_averaged, run_one


class TestMetricsRoundtrip:
    def test_to_from_dict(self):
        from repro.runtime.metrics import RunMetrics

        m = run_one("mm-256", "GRWS", BenchConfig(repetitions=1))
        data = json.loads(json.dumps(m.to_dict()))  # must be JSON-safe
        back = RunMetrics.from_dict(data)
        assert back.total_energy == pytest.approx(m.total_energy)
        assert back.makespan == m.makespan
        assert back.tasks_executed == m.tasks_executed
        assert back.per_kernel["mm.256"].invocations == (
            m.per_kernel["mm.256"].invocations
        )
        assert back.per_kernel["mm.256"].placements == (
            m.per_kernel["mm.256"].placements
        )

    def test_joss_extras_survive(self):
        from repro.runtime.metrics import RunMetrics

        m = run_one("mm-256", "JOSS", BenchConfig(repetitions=1))
        back = RunMetrics.from_dict(m.to_dict())
        assert back.extras["decisions"] == m.extras["decisions"]
        assert back.sampling_time == m.sampling_time


class TestAveragedMetricsComplete:
    def test_transitions_and_kernels_carried(self):
        m = run_averaged("mm-256", "JOSS", BenchConfig(repetitions=2))
        assert m.cluster_freq_transitions > 0
        assert m.per_kernel  # per-kernel stats present
        assert "mm.256" in m.per_kernel


class TestCliCompare:
    def test_compare_renders(self, capsys):
        from repro.cli import main

        rc = main(
            ["compare", "-w", "mm-256", "-s", "GRWS", "JOSS",
             "--repetitions", "1"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "GRWS vs JOSS" in out
        assert "Per-kernel" in out
        assert "the energy" in out
