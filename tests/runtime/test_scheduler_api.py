"""Tests for the scheduler contract and runtime context."""

from __future__ import annotations

import pytest

from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, Placement, Scheduler, TaskGraph

K = KernelSpec("api.k", w_comp=0.05, w_bytes=0.001)


class MinimalScheduler(Scheduler):
    """Implements only the mandatory method — defaults do the rest."""

    name = "minimal"

    def place(self, task):
        return Placement(cluster=self.ctx.platform.clusters[1], f_c=1.11)


class TestDefaults:
    def test_minimal_scheduler_runs(self):
        g = TaskGraph("api")
        prev = None
        for _ in range(8):
            prev = g.add_task(K, deps=[prev] if prev else None)
        ex = Executor(jetson_tx2(), MinimalScheduler(), seed=1)
        m = ex.run(g)
        assert m.tasks_executed == 8
        # The default on_task_execute forwards placement freq requests.
        assert ex.platform.clusters[1].freq == 1.11
        assert m.cluster_freq_transitions >= 1

    def test_default_steal_scope_is_same_type(self):
        sched = MinimalScheduler()
        ex = Executor(jetson_tx2(), sched, seed=1)
        sched.bind(ex.ctx)
        a57_core = ex.platform.cores[2]
        victims = sched.steal_candidates(a57_core)
        assert all(c.core_type.name == "a57" for c in victims)
        assert a57_core not in victims

    def test_unbound_scheduler_falls_back_to_cluster(self):
        sched = MinimalScheduler()  # never bound
        core = jetson_tx2().cores[2]
        victims = sched.steal_candidates(core)
        assert len(victims) == 3

    def test_describe(self):
        assert MinimalScheduler().describe() == "minimal"


class TestRuntimeContext:
    @pytest.fixture
    def ex(self):
        return Executor(jetson_tx2(), MinimalScheduler(), seed=1)

    def test_now_tracks_sim(self, ex):
        assert ex.ctx.now == ex.sim.now

    def test_freq_requests_snap(self, ex):
        got = ex.ctx.request_cluster_freq(ex.platform.clusters[0], 1.15)
        assert got == 1.11
        got_m = ex.ctx.request_memory_freq(0.81)
        assert got_m == 0.800

    def test_concurrency_helpers(self, ex):
        assert ex.ctx.busy_core_count() == 0
        assert ex.ctx.cluster_active_tasks(ex.platform.clusters[0]) == 0
        ex.engine.start_activity(K, ex.platform.cores[0])
        assert ex.ctx.busy_core_count() == 1
        assert ex.ctx.cluster_active_tasks(ex.platform.clusters[0]) == 1
        assert ex.ctx.cluster_active_tasks(ex.platform.clusters[1]) == 0

    def test_metrics_attached(self, ex):
        assert ex.ctx.metrics is ex.metrics
