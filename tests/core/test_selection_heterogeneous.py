"""Selection over tables with different grid shapes (per-cluster
ladders, the ODROID-XU4 case) — regression tests for the logical-corner
steepest descent."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.selection import exhaustive_select, steepest_descent_select
from tests.core.test_selection import cost_fn, make_table


def hetero_tables(big_best=True):
    """A 7x1 'big' table and a 5x1 'little' table (no memory DVFS)."""
    big = np.linspace(2.0, 4.0, 7)[:, None]      # best at low index
    little = np.linspace(3.0, 5.0, 5)[:, None]
    if not big_best:
        big, little = little + 2.0, big
    return {
        ("a15", 1): make_table("a15", 1, big),
        ("a7", 1): make_table("a7", 1, little),
    }


def test_different_shapes_no_crash():
    tables = hetero_tables()
    sd = steepest_descent_select(tables, cost_fn)
    ex = exhaustive_select(tables, cost_fn)
    assert (sd.cluster, sd.i_fc, sd.i_fm) == (ex.cluster, ex.i_fc, ex.i_fm)


def test_winner_can_be_smaller_table():
    tables = hetero_tables(big_best=False)
    sd = steepest_descent_select(tables, cost_fn)
    assert sd.cluster == "a7"
    assert sd.i_fc < 5


def test_mixed_2d_and_column_tables():
    """One cluster has a full (f_C, f_M) grid, another a single-column
    grid — mixed shapes in one selection."""
    rng = np.random.default_rng(3)
    grid2d = 2.0 + np.add.outer(np.arange(6) * 0.2, np.arange(4) * 0.1)
    col = 1.5 + np.arange(5)[:, None] * 0.3  # global optimum at (0, 0)
    tables = {
        ("big", 1): make_table("big", 1, grid2d),
        ("little", 1): make_table("little", 1, col),
    }
    sd = steepest_descent_select(tables, cost_fn)
    ex = exhaustive_select(tables, cost_fn)
    assert sd.cluster == ex.cluster == "little"
    assert sd.cost == pytest.approx(ex.cost)
