"""Tests for frequency coordination and task coarsening."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.coarsening import CoarseningPolicy
from repro.core.coordination import FrequencyCoordinator
from repro.errors import ConfigurationError


class TestCoordinator:
    def test_alone_gets_desired(self):
        c = FrequencyCoordinator("mean")
        assert c.resolve(1.11, 2.04, others_running=False) == 1.11

    def test_mean_balances(self):
        c = FrequencyCoordinator("mean")
        assert c.resolve(1.0, 2.0, True) == pytest.approx(1.5)

    def test_min_max_ours_theirs(self):
        assert FrequencyCoordinator("min").resolve(1.0, 2.0, True) == 1.0
        assert FrequencyCoordinator("max").resolve(1.0, 2.0, True) == 2.0
        assert FrequencyCoordinator("ours").resolve(1.0, 2.0, True) == 1.0
        assert FrequencyCoordinator("theirs").resolve(1.0, 2.0, True) == 2.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyCoordinator("median")  # type: ignore[arg-type]

    @given(
        desired=st.floats(0.3, 2.1),
        current=st.floats(0.3, 2.1),
    )
    def test_property_mean_between_inputs(self, desired, current):
        got = FrequencyCoordinator("mean").resolve(desired, current, True)
        assert min(desired, current) - 1e-12 <= got <= max(desired, current) + 1e-12


class _FakeQueue:
    def __init__(self, names):
        self._names = names

    def peek_types(self):
        return self._names


class _FakeCtx:
    def __init__(self, queue_names):
        self.queues = {i: _FakeQueue(n) for i, n in enumerate(queue_names)}


class TestCoarsening:
    def test_coarse_task_always_throttles(self, tx2):
        pol = CoarseningPolicy(fine_grained_threshold_s=1e-4)
        ctx = _FakeCtx([[], [], [], [], [], []])
        assert pol.should_throttle(ctx, tx2.clusters[1].cores, "k", reference_time=1.0)
        assert pol.suppressed == 0

    def test_fine_task_suppressed_when_alone(self, tx2):
        pol = CoarseningPolicy(fine_grained_threshold_s=1e-3, batch_size=4)
        ctx = _FakeCtx([[], [], [], [], [], []])
        assert not pol.should_throttle(ctx, tx2.clusters[1].cores, "k", 1e-5)
        assert pol.suppressed == 1

    def test_fine_task_throttles_with_batch(self, tx2):
        pol = CoarseningPolicy(fine_grained_threshold_s=1e-3, batch_size=3)
        # Cluster 1 (a57) owns cores 2..5; queues hold same-kernel tasks.
        ctx = _FakeCtx([[], [], ["k"], ["k", "other"], [], []])
        assert pol.should_throttle(ctx, tx2.clusters[1].cores, "k", 1e-5)

    def test_other_kernels_do_not_count(self, tx2):
        pol = CoarseningPolicy(fine_grained_threshold_s=1e-3, batch_size=3)
        ctx = _FakeCtx([[], [], ["x"], ["y"], ["z"], []])
        assert not pol.should_throttle(ctx, tx2.clusters[1].cores, "k", 1e-5)

    def test_disabled_policy_never_fine(self):
        pol = CoarseningPolicy(enabled=False)
        assert not pol.is_fine_grained(1e-9)
