"""Tests for configuration selection (exhaustive + steepest descent)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import exhaustive_select, steepest_descent_select
from repro.errors import ModelError
from repro.models.tables import PredictionTable


def make_table(cluster, n_cores, cost_grid, n_fc=None, n_fm=None):
    """PredictionTable whose energy_grid(1) equals ``cost_grid``."""
    cost = np.asarray(cost_grid, dtype=float)
    n_fc, n_fm = cost.shape
    ones = np.ones_like(cost)
    return PredictionTable(
        cluster=cluster,
        n_cores=n_cores,
        mb=0.5,
        time_ref=1.0,
        f_c_grid=np.linspace(0.5, 2.0, n_fc),
        f_m_grid=np.linspace(0.4, 1.8, n_fm),
        time=ones,
        cpu_power=cost - 1.0,  # energy = time*(cpu+mem+idle) = cost
        mem_power=np.zeros_like(cost),
        idle_cpu=np.ones(n_fc),
        idle_mem=np.zeros(n_fm),
    )


def cost_fn(tab):
    return tab.energy_grid(1.0)


class TestExhaustive:
    def test_finds_global_minimum(self):
        grid = np.full((4, 3), 5.0)
        grid[2, 1] = 1.0
        tables = {("a57", 1): make_table("a57", 1, grid)}
        r = exhaustive_select(tables, cost_fn)
        assert (r.i_fc, r.i_fm) == (2, 1)
        assert r.cost == pytest.approx(1.0)
        assert r.evaluations == 12

    def test_across_tables(self):
        t1 = make_table("a57", 1, np.full((3, 3), 4.0))
        g2 = np.full((3, 3), 6.0)
        g2[0, 0] = 2.0
        t2 = make_table("denver", 2, g2)
        r = exhaustive_select({("a57", 1): t1, ("denver", 2): t2}, cost_fn)
        assert (r.cluster, r.n_cores) == ("denver", 2)
        assert r.evaluations == 18

    def test_empty_tables_rejected(self):
        with pytest.raises(ModelError):
            exhaustive_select({}, cost_fn)

    def test_freqs_lookup(self):
        grid = np.full((3, 3), 2.0)
        grid[0, 2] = 1.0
        tables = {("a57", 4): make_table("a57", 4, grid)}
        r = exhaustive_select(tables, cost_fn)
        f_c, f_m = r.freqs(tables)
        assert f_c == pytest.approx(0.5)
        assert f_m == pytest.approx(1.8)


class TestSteepestDescent:
    def test_matches_exhaustive_on_convex_grid(self):
        # A smooth bowl: hill descent must find the bottom.
        fc = np.linspace(-1, 1, 12)
        fm = np.linspace(-1, 1, 7)
        grid = (fc[:, None] - 0.3) ** 2 + (fm[None, :] + 0.2) ** 2 + 1.0
        tables = {("a57", 1): make_table("a57", 1, grid)}
        ex = exhaustive_select(tables, cost_fn)
        sd = steepest_descent_select(tables, cost_fn)
        assert (sd.i_fc, sd.i_fm) == (ex.i_fc, ex.i_fm)
        assert sd.evaluations < ex.evaluations

    def test_far_fewer_evaluations(self):
        tables = {}
        rng = np.random.default_rng(0)
        for i in range(5):
            base = rng.uniform(1, 2, size=(12, 7))
            # Smooth it so descent works (cumulative structure).
            grid = base + np.add.outer(np.arange(12) * 0.1, np.arange(7) * 0.1)
            tables[("c", i + 1)] = make_table("c", i + 1, grid)
        ex = exhaustive_select(tables, cost_fn)
        sd = steepest_descent_select(tables, cost_fn)
        assert sd.evaluations < 0.4 * ex.evaluations

    def test_corner_seeding_picks_winning_table(self):
        # Table A dominates at every corner.
        a = np.full((4, 4), 1.0)
        b = np.full((4, 4), 3.0)
        tables = {("a", 1): make_table("a", 1, a), ("b", 1): make_table("b", 1, b)}
        sd = steepest_descent_select(tables, cost_fn)
        assert sd.cluster == "a"

    def test_single_cell_grid(self):
        tables = {("a57", 1): make_table("a57", 1, [[2.0]])}
        sd = steepest_descent_select(tables, cost_fn)
        assert (sd.i_fc, sd.i_fm) == (0, 0)
        assert sd.cost == pytest.approx(2.0)

    def test_single_column_grid_no_mem_dvfs(self):
        grid = np.asarray([[5.0], [3.0], [4.0], [6.0]])
        tables = {("a57", 1): make_table("a57", 1, grid)}
        sd = steepest_descent_select(tables, cost_fn)
        assert (sd.i_fc, sd.i_fm) == (1, 0)

    def test_infinite_corners_fall_back_to_finite_cells(self):
        grid = np.full((4, 4), np.inf)
        grid[1, 2] = 1.5
        tables = {("a57", 1): make_table("a57", 1, grid)}
        sd = steepest_descent_select(tables, cost_fn)
        assert sd.cost == pytest.approx(1.5)

    def test_all_infinite_rejected(self):
        tables = {("a57", 1): make_table("a57", 1, np.full((3, 3), np.inf))}
        with pytest.raises(ModelError):
            steepest_descent_select(tables, cost_fn)

    @settings(max_examples=40, deadline=None)
    @given(
        cx=st.floats(-1, 1), cy=st.floats(-1, 1),
        scale=st.floats(0.1, 5.0),
    )
    def test_property_descent_optimal_on_separable_bowls(self, cx, cy, scale):
        fc = np.linspace(-1, 1, 9)
        fm = np.linspace(-1, 1, 6)
        grid = scale * ((fc[:, None] - cx) ** 2 + (fm[None, :] - cy) ** 2) + 1.0
        tables = {("x", 1): make_table("x", 1, grid)}
        ex = exhaustive_select(tables, cost_fn)
        sd = steepest_descent_select(tables, cost_fn)
        assert sd.cost == pytest.approx(ex.cost)
