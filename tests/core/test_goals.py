"""Tests for the trade-off goals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.goals import (
    DeadlineGoal,
    GoalSpec,
    MaxPerformance,
    MaxPerformanceUnderPowerCap,
    MinCpuEnergy,
    MinTotalEnergy,
    PerformanceConstraint,
    goal_names,
    goal_spec,
    parse_goal,
)
from repro.errors import ModelError
from repro.models.tables import PredictionTable


def table(cluster, n_cores, time, cpu, mem, idle_cpu=0.5, idle_mem=0.2):
    time = np.asarray(time, float)
    return PredictionTable(
        cluster=cluster,
        n_cores=n_cores,
        mb=0.3,
        time_ref=1.0,
        f_c_grid=np.linspace(0.5, 2.0, time.shape[0]),
        f_m_grid=np.linspace(0.4, 1.8, time.shape[1]),
        time=time,
        cpu_power=np.asarray(cpu, float) * np.ones_like(time),
        mem_power=np.asarray(mem, float) * np.ones_like(time),
        idle_cpu=np.full(time.shape[0], idle_cpu),
        idle_mem=np.full(time.shape[1], idle_mem),
    )


@pytest.fixture
def tables():
    # "fast": 1s at 3W; "slow": 2s at 1W -> slow wins energy, fast wins time.
    fast = table("fast", 1, np.full((3, 3), 1.0), cpu=3.0, mem=0.0)
    slow = table("slow", 1, np.full((3, 3), 2.0), cpu=1.0, mem=0.0)
    return {("fast", 1): fast, ("slow", 1): slow}


class TestMinTotalEnergy:
    def test_picks_lower_energy_config(self, tables):
        r = MinTotalEnergy().select(tables, "exhaustive")
        assert r.cluster == "slow"

    def test_concurrency_mapping_shifts_choice(self, tables):
        # Give the slow config the full idle burden and the fast one a
        # big sharing factor: fast becomes cheaper.
        # slow: 2*(1+0.7/1)=3.4 ; fast: 1*(3+0.7/100)=3.007
        conc = {("slow", 1): 1.0, ("fast", 1): 100.0}
        r = MinTotalEnergy().select(tables, "exhaustive", concurrency=conc)
        assert r.cluster == "fast"

    def test_scalar_concurrency_still_accepted(self, tables):
        r = MinTotalEnergy().select(tables, "exhaustive", concurrency=4.0)
        assert r.cluster == "slow"


class TestMinCpuEnergy:
    def test_ignores_memory_power(self):
        # Same CPU profile; cheap config has huge memory power.
        a = table("a", 1, np.full((2, 2), 1.0), cpu=1.0, mem=50.0)
        b = table("b", 1, np.full((2, 2), 1.0), cpu=1.2, mem=0.0)
        r = MinCpuEnergy().select({("a", 1): a, ("b", 1): b}, "exhaustive")
        assert r.cluster == "a"  # blind to the memory rail, like STEER

    def test_total_energy_sees_it(self):
        a = table("a", 1, np.full((2, 2), 1.0), cpu=1.0, mem=50.0)
        b = table("b", 1, np.full((2, 2), 1.0), cpu=1.2, mem=0.0)
        r = MinTotalEnergy().select({("a", 1): a, ("b", 1): b}, "exhaustive")
        assert r.cluster == "b"


class TestMaxPerformance:
    def test_picks_fastest(self, tables):
        r = MaxPerformance().select(tables, "exhaustive")
        assert r.cluster == "fast"


class TestPerformanceConstraint:
    def test_satisfiable_constraint(self, tables):
        # Min-energy is slow (t=2); 1.5x target needs t <= 1.33 -> fast.
        r = PerformanceConstraint(1.5).select(tables, "exhaustive")
        assert r.cluster == "fast"

    def test_trivial_constraint_keeps_min_energy(self, tables):
        r = PerformanceConstraint(1.0).select(tables, "exhaustive")
        assert r.cluster == "slow"

    def test_unsatisfiable_falls_back_to_fastest(self, tables):
        r = PerformanceConstraint(10.0).select(tables, "exhaustive")
        assert r.cluster == "fast"

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ModelError):
            PerformanceConstraint(0.0)

    def test_steepest_variant_works(self, tables):
        r = PerformanceConstraint(1.5).select(tables, "steepest")
        assert r.cluster == "fast"

    def test_among_feasible_picks_least_energy(self):
        # Min-energy is the slow config (t=4); a 2x target admits both
        # the mid (t=1.5) and fastest (t=1) configs -> pick mid, the
        # cheaper of the feasible ones.
        kw = dict(mem=0.0, idle_cpu=0.05, idle_mem=0.0)
        cheap = table("cheap", 1, np.full((2, 2), 4.0), cpu=0.05, **kw)
        mid = table("mid", 1, np.full((2, 2), 1.5), cpu=1.0, **kw)
        fast = table("fastest", 1, np.full((2, 2), 1.0), cpu=5.0, **kw)
        tables = {("cheap", 1): cheap, ("mid", 1): mid, ("fastest", 1): fast}
        base = MinTotalEnergy().select(tables, "exhaustive")
        assert base.cluster == "cheap"
        r = PerformanceConstraint(2.0).select(tables, "exhaustive")
        assert r.cluster == "mid"


class TestDeadlineGoal:
    def test_picks_least_energy_feasible(self):
        # Min-energy overall is "cheap" (t=4) but it blows a 2 s
        # deadline; "mid" (t=1.5) is the cheaper of the feasible pair.
        kw = dict(mem=0.0, idle_cpu=0.05, idle_mem=0.0)
        cheap = table("cheap", 1, np.full((2, 2), 4.0), cpu=0.05, **kw)
        mid = table("mid", 1, np.full((2, 2), 1.5), cpu=1.0, **kw)
        fast = table("fastest", 1, np.full((2, 2), 1.0), cpu=5.0, **kw)
        tabs = {("cheap", 1): cheap, ("mid", 1): mid, ("fastest", 1): fast}
        goal = DeadlineGoal(2.0)
        r = goal.select(tabs, "exhaustive")
        assert r.cluster == "mid"
        assert goal.predicted_misses == 0

    def test_loose_deadline_is_min_energy(self, tables):
        assert DeadlineGoal(100.0).select(tables, "exhaustive").cluster == "slow"

    def test_infeasible_falls_back_to_fastest(self, tables):
        goal = DeadlineGoal(1e-9)
        r = goal.select(tables, "exhaustive")
        assert r.cluster == "fast"
        assert goal.predicted_misses == 1

    def test_steepest_variant_works(self, tables):
        # Feasibility mask (inf walls) must not strand steepest descent.
        goal = DeadlineGoal(1.5)
        assert goal.select(tables, "steepest").cluster == "fast"

    def test_invalid_deadline_rejected(self):
        with pytest.raises(ModelError):
            DeadlineGoal(0.0)

    def test_name_uses_general_format(self):
        assert DeadlineGoal(0.05).name == "deadline-0.05s"


class TestGoalRegistry:
    @pytest.mark.parametrize("name, cls", [
        ("min-total-energy", MinTotalEnergy),
        ("min-cpu-energy", MinCpuEnergy),
        ("maxp", MaxPerformance),
        ("perf-1.4x", PerformanceConstraint),
        ("powercap-4W", MaxPerformanceUnderPowerCap),
        ("deadline-0.05s", DeadlineGoal),
    ])
    def test_parse_goal_round_trips(self, name, cls):
        goal = parse_goal(name)
        assert isinstance(goal, cls)
        assert goal.name == name
        # And the GoalSpec form agrees with the string form.
        spec = goal_spec(name)
        assert spec.name == name
        assert parse_goal(spec).name == name

    def test_parse_goal_passes_instances_through(self):
        goal = MinTotalEnergy()
        assert parse_goal(goal) is goal

    def test_unknown_goal_lists_known_names(self):
        with pytest.raises(ModelError) as exc:
            parse_goal("fastest-please")
        assert "min-total-energy" in str(exc.value)

    def test_goal_names_covers_the_registry(self):
        names = goal_names()
        assert "min-total-energy" in names and "maxp" in names

    def test_parameter_values_parse(self):
        assert parse_goal("perf-1.4x").speedup == pytest.approx(1.4)
        assert parse_goal("powercap-4W").cap_watts == pytest.approx(4.0)
        assert parse_goal("deadline-0.05s").deadline_s == pytest.approx(0.05)

    def test_goal_spec_validates(self):
        with pytest.raises(ModelError):
            GoalSpec("deadline", -1.0)
        with pytest.raises(ModelError):
            GoalSpec("maxp", 2.0)  # fixed goals take no parameter
