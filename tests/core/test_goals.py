"""Tests for the trade-off goals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.goals import (
    MaxPerformance,
    MinCpuEnergy,
    MinTotalEnergy,
    PerformanceConstraint,
)
from repro.errors import ModelError
from repro.models.tables import PredictionTable


def table(cluster, n_cores, time, cpu, mem, idle_cpu=0.5, idle_mem=0.2):
    time = np.asarray(time, float)
    return PredictionTable(
        cluster=cluster,
        n_cores=n_cores,
        mb=0.3,
        time_ref=1.0,
        f_c_grid=np.linspace(0.5, 2.0, time.shape[0]),
        f_m_grid=np.linspace(0.4, 1.8, time.shape[1]),
        time=time,
        cpu_power=np.asarray(cpu, float) * np.ones_like(time),
        mem_power=np.asarray(mem, float) * np.ones_like(time),
        idle_cpu=np.full(time.shape[0], idle_cpu),
        idle_mem=np.full(time.shape[1], idle_mem),
    )


@pytest.fixture
def tables():
    # "fast": 1s at 3W; "slow": 2s at 1W -> slow wins energy, fast wins time.
    fast = table("fast", 1, np.full((3, 3), 1.0), cpu=3.0, mem=0.0)
    slow = table("slow", 1, np.full((3, 3), 2.0), cpu=1.0, mem=0.0)
    return {("fast", 1): fast, ("slow", 1): slow}


class TestMinTotalEnergy:
    def test_picks_lower_energy_config(self, tables):
        r = MinTotalEnergy().select(tables, "exhaustive")
        assert r.cluster == "slow"

    def test_concurrency_mapping_shifts_choice(self, tables):
        # Give the slow config the full idle burden and the fast one a
        # big sharing factor: fast becomes cheaper.
        # slow: 2*(1+0.7/1)=3.4 ; fast: 1*(3+0.7/100)=3.007
        conc = {("slow", 1): 1.0, ("fast", 1): 100.0}
        r = MinTotalEnergy().select(tables, "exhaustive", concurrency=conc)
        assert r.cluster == "fast"

    def test_scalar_concurrency_still_accepted(self, tables):
        r = MinTotalEnergy().select(tables, "exhaustive", concurrency=4.0)
        assert r.cluster == "slow"


class TestMinCpuEnergy:
    def test_ignores_memory_power(self):
        # Same CPU profile; cheap config has huge memory power.
        a = table("a", 1, np.full((2, 2), 1.0), cpu=1.0, mem=50.0)
        b = table("b", 1, np.full((2, 2), 1.0), cpu=1.2, mem=0.0)
        r = MinCpuEnergy().select({("a", 1): a, ("b", 1): b}, "exhaustive")
        assert r.cluster == "a"  # blind to the memory rail, like STEER

    def test_total_energy_sees_it(self):
        a = table("a", 1, np.full((2, 2), 1.0), cpu=1.0, mem=50.0)
        b = table("b", 1, np.full((2, 2), 1.0), cpu=1.2, mem=0.0)
        r = MinTotalEnergy().select({("a", 1): a, ("b", 1): b}, "exhaustive")
        assert r.cluster == "b"


class TestMaxPerformance:
    def test_picks_fastest(self, tables):
        r = MaxPerformance().select(tables, "exhaustive")
        assert r.cluster == "fast"


class TestPerformanceConstraint:
    def test_satisfiable_constraint(self, tables):
        # Min-energy is slow (t=2); 1.5x target needs t <= 1.33 -> fast.
        r = PerformanceConstraint(1.5).select(tables, "exhaustive")
        assert r.cluster == "fast"

    def test_trivial_constraint_keeps_min_energy(self, tables):
        r = PerformanceConstraint(1.0).select(tables, "exhaustive")
        assert r.cluster == "slow"

    def test_unsatisfiable_falls_back_to_fastest(self, tables):
        r = PerformanceConstraint(10.0).select(tables, "exhaustive")
        assert r.cluster == "fast"

    def test_invalid_speedup_rejected(self):
        with pytest.raises(ModelError):
            PerformanceConstraint(0.0)

    def test_steepest_variant_works(self, tables):
        r = PerformanceConstraint(1.5).select(tables, "steepest")
        assert r.cluster == "fast"

    def test_among_feasible_picks_least_energy(self):
        # Min-energy is the slow config (t=4); a 2x target admits both
        # the mid (t=1.5) and fastest (t=1) configs -> pick mid, the
        # cheaper of the feasible ones.
        kw = dict(mem=0.0, idle_cpu=0.05, idle_mem=0.0)
        cheap = table("cheap", 1, np.full((2, 2), 4.0), cpu=0.05, **kw)
        mid = table("mid", 1, np.full((2, 2), 1.5), cpu=1.0, **kw)
        fast = table("fastest", 1, np.full((2, 2), 1.0), cpu=5.0, **kw)
        tables = {("cheap", 1): cheap, ("mid", 1): mid, ("fastest", 1): fast}
        base = MinTotalEnergy().select(tables, "exhaustive")
        assert base.cluster == "cheap"
        r = PerformanceConstraint(2.0).select(tables, "exhaustive")
        assert r.cluster == "mid"
