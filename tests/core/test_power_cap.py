"""Tests for the power-cap extension goal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.goals import MaxPerformanceUnderPowerCap
from repro.errors import ModelError
from tests.core.test_goals import table


@pytest.fixture
def tables():
    # fast: t=1 at ~5.7 W ; slow: t=2 at ~1.7 W (incl. idle 0.7).
    fast = table("fast", 1, np.full((3, 3), 1.0), cpu=5.0, mem=0.0)
    slow = table("slow", 1, np.full((3, 3), 2.0), cpu=1.0, mem=0.0)
    return {("fast", 1): fast, ("slow", 1): slow}


def test_loose_cap_picks_fastest(tables):
    r = MaxPerformanceUnderPowerCap(10.0).select(tables, "exhaustive")
    assert r.cluster == "fast"


def test_tight_cap_forces_slow_config(tables):
    r = MaxPerformanceUnderPowerCap(2.0).select(tables, "exhaustive")
    assert r.cluster == "slow"


def test_unsatisfiable_cap_minimises_power(tables):
    r = MaxPerformanceUnderPowerCap(0.1).select(tables, "exhaustive")
    assert r.cluster == "slow"  # least average power available


def test_invalid_cap_rejected():
    with pytest.raises(ModelError):
        MaxPerformanceUnderPowerCap(0.0)


def test_steepest_selector(tables):
    r = MaxPerformanceUnderPowerCap(2.0).select(tables, "steepest")
    assert r.cluster == "slow"


def test_end_to_end_with_joss():
    from repro.core import JossScheduler
    from repro.hw import jetson_tx2
    from repro.models import profile_and_fit
    from repro.runtime import Executor
    from repro.workloads import build_workload

    suite = profile_and_fit(jetson_tx2, seed=0)
    loose = Executor(
        jetson_tx2(), JossScheduler.with_power_cap(suite, 50.0), seed=7
    ).run(build_workload("mm-256", seed=2))
    tight = Executor(
        jetson_tx2(), JossScheduler.with_power_cap(suite, 1.0), seed=7
    ).run(build_workload("mm-256", seed=2))
    # A tight per-task cap slows execution and lowers average power.
    assert tight.makespan > loose.makespan
    assert (
        tight.total_energy / tight.makespan
        < loose.total_energy / loose.makespan
    )


def test_registry_name():
    from repro.errors import ConfigurationError
    from repro.hw import jetson_tx2
    from repro.models import profile_and_fit
    from repro.schedulers import make_scheduler

    suite = profile_and_fit(jetson_tx2, seed=0)
    s = make_scheduler("JOSS_cap3W", suite)
    assert s.goal.cap_watts == pytest.approx(3.0)
    with pytest.raises(ConfigurationError):
        make_scheduler("JOSS_capXW", suite)
