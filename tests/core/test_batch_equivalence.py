"""Scalar-vs-batch decision-pipeline equivalence (the PR's contract).

The batch pipeline (:mod:`repro.core.batch` +
:meth:`ModelSuite.build_tables_batch`) must reproduce the scalar
reference flow (``suite.build_tables`` then ``goal.select``) *exactly*:
identical chosen configurations, identical ``evaluations`` accounting
(the section 7.4 overhead metric), and bit-identical
:class:`PredictionTable` contents — not merely approximately equal.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import batch_select, resolve_kernels
from repro.core.goals import (
    DeadlineGoal,
    MaxPerformance,
    MaxPerformanceUnderPowerCap,
    MinCpuEnergy,
    MinTotalEnergy,
    PerformanceConstraint,
)
from repro.errors import ModelError
from repro.hw.platform import jetson_tx2
from repro.models.training import profile_and_fit
from tests.core.test_selection import make_table

#: Every shipped goal, including constraint goals at both a satisfiable
#: and an unsatisfiable setting (the fallback paths differ).
GOALS = [
    MinTotalEnergy(),
    MinCpuEnergy(),
    MaxPerformance(),
    PerformanceConstraint(1.3),
    PerformanceConstraint(5.0),  # mostly unsatisfiable -> MaxPerformance
    MaxPerformanceUnderPowerCap(3.0),
    MaxPerformanceUnderPowerCap(0.001),  # unsatisfiable -> least power
    # Deadline settings spanning the feasibility spectrum (kernel
    # time_refs are drawn from 0.001-0.080 s): infeasible for every
    # kernel, tight (mixed fallback), two mid settings, and loose.
    DeadlineGoal(1e-6),   # infeasible everywhere -> MaxPerformance
    DeadlineGoal(0.003),  # tight: most kernels fall back
    DeadlineGoal(0.01),
    DeadlineGoal(0.05),
    DeadlineGoal(0.5),    # loose: feasible everywhere
]
SELECTORS = ["steepest", "exhaustive"]

TABLE_ARRAYS = (
    "time", "cpu_power", "mem_power", "idle_cpu", "idle_mem",
    "f_c_grid", "f_m_grid",
)


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


@pytest.fixture(scope="module")
def grids(suite):
    platform = jetson_tx2()
    out = {}
    for cl_name, _n in suite.config_keys():
        if cl_name not in out:
            cluster = platform.cluster_by_type(cl_name)
            out[cl_name] = (
                cluster.opps.as_array(),
                platform.memory.opps.as_array(),
            )
    return out


def random_kernel_params(suite, n_kernels: int, seed: int):
    rng = np.random.default_rng(seed)
    return {
        f"k{i:02d}": {
            key: (
                float(rng.uniform(0.02, 0.98)),
                float(rng.uniform(0.001, 0.080)),
            )
            for key in suite.config_keys()
        }
        for i in range(n_kernels)
    }


def per_config_concurrency(suite):
    return {
        key: float(1.0 + idx % 3)
        for idx, key in enumerate(suite.config_keys())
    }


class TestSuiteLevelEquivalence:
    """The full pipeline against the scalar flow on fitted TX2 models."""

    @pytest.mark.parametrize("selector", SELECTORS)
    @pytest.mark.parametrize("goal", GOALS, ids=lambda g: g.name)
    def test_every_goal_and_selector(self, suite, grids, goal, selector):
        kernel_params = random_kernel_params(suite, n_kernels=13, seed=42)
        conc = per_config_concurrency(suite)
        decisions = resolve_kernels(
            suite, kernel_params, grids, goal, selector, conc
        )
        assert list(decisions) == list(kernel_params)
        for kname, params in kernel_params.items():
            tables = suite.build_tables(params, grids)
            sel = goal.select(tables, selector, concurrency=conc)
            f_c, f_m = sel.freqs(tables)
            dec = decisions[kname]
            assert dec.selection == sel  # incl. cost and evaluations
            assert (dec.f_c, dec.f_m) == (f_c, f_m)
            assert list(dec.tables) == list(tables)
            for key, tab in tables.items():
                batch_tab = dec.tables[key]
                for attr in TABLE_ARRAYS:
                    assert np.array_equal(
                        getattr(batch_tab, attr), getattr(tab, attr)
                    ), f"{kname} {key} {attr} not bit-identical"
                assert (batch_tab.mb, batch_tab.time_ref) == (
                    tab.mb, tab.time_ref,
                )

    @pytest.mark.parametrize("deadline_s", [1e-6, 0.003, 0.01, 0.05, 0.5])
    @pytest.mark.parametrize("selector", SELECTORS)
    def test_deadline_predicted_miss_parity(
        self, suite, grids, deadline_s, selector
    ):
        """Both paths must record the same number of predicted misses
        (kernels that fell back to max-perf) on fresh goal instances."""
        kernel_params = random_kernel_params(suite, n_kernels=13, seed=42)
        conc = per_config_concurrency(suite)
        batch_goal = DeadlineGoal(deadline_s)
        resolve_kernels(
            suite, kernel_params, grids, batch_goal, selector, conc
        )
        scalar_goal = DeadlineGoal(deadline_s)
        for params in kernel_params.values():
            tables = suite.build_tables(params, grids)
            scalar_goal.select(tables, selector, concurrency=conc)
        assert batch_goal.predicted_misses == scalar_goal.predicted_misses
        if deadline_s == 1e-6:
            assert batch_goal.predicted_misses == len(kernel_params)
        if deadline_s == 0.5:
            assert batch_goal.predicted_misses == 0

    def test_single_kernel_matches(self, suite, grids):
        """K=1 is the in-run shape (kernels resolve one at a time)."""
        kernel_params = random_kernel_params(suite, n_kernels=1, seed=7)
        decisions = resolve_kernels(
            suite, kernel_params, grids, MinTotalEnergy(), "steepest", 2.0
        )
        (kname, params), = kernel_params.items()
        tables = suite.build_tables(params, grids)
        sel = MinTotalEnergy().select(tables, "steepest", concurrency=2.0)
        assert decisions[kname].selection == sel

    def test_user_goal_subclass_falls_back_to_scalar(self, suite, grids):
        """``type`` is matched exactly: a subclass with overridden
        behaviour must route through its own ``select``."""

        class Pinned(MinTotalEnergy):
            name = "pinned"

            def select(self, tables, selector="steepest", concurrency=1.0):
                key = next(iter(tables))
                from repro.core.selection import SelectionResult

                return SelectionResult(key[0], key[1], 0, 0, 1.0, 0)

        kernel_params = random_kernel_params(suite, n_kernels=3, seed=3)
        tables_by_kernel = suite.build_tables_batch(kernel_params, grids)
        out = batch_select(tables_by_kernel, Pinned(), "steepest", 1.0)
        for res in out.values():
            assert (res.i_fc, res.i_fm, res.cost, res.evaluations) == (
                0, 0, 1.0, 0,
            )


# ----------------------------------------------------------------------
# Synthetic-grid edge cases (direct scalar-selection parity)
# ----------------------------------------------------------------------
def _scalar_vs_batch(tables_by_kernel, selector):
    """Run MinTotalEnergy at concurrency 1 both ways; the make_table
    grids make ``energy_grid(1)`` the cost grid itself."""
    goal = MinTotalEnergy()
    batch = batch_select(tables_by_kernel, goal, selector, 1.0)
    for kname, tables in tables_by_kernel.items():
        scalar = goal.select(tables, selector, concurrency=1.0)
        assert batch[kname] == scalar, f"{kname}: {batch[kname]} != {scalar}"


class TestSyntheticEdgeCases:
    @pytest.mark.parametrize("selector", SELECTORS)
    def test_tie_between_tables_first_wins(self, selector):
        flat = np.full((3, 3), 2.0)
        tables = {
            "k": {("a", 1): make_table("a", 1, flat),
                  ("b", 2): make_table("b", 2, flat.copy())},
        }
        _scalar_vs_batch(tables, selector)
        res = batch_select(tables, MinTotalEnergy(), selector, 1.0)["k"]
        assert (res.cluster, res.n_cores) == ("a", 1)

    def test_infeasible_corners_fall_back_to_grid_scan(self):
        grid = np.full((5, 4), np.inf)
        grid[2, 1] = 1.5
        grid[3, 2] = 1.2
        tables = {"k": {("a", 1): make_table("a", 1, grid)}}
        _scalar_vs_batch(tables, "steepest")

    def test_all_infinite_raises_like_scalar(self):
        tables = {"k": {("a", 1): make_table("a", 1, np.full((3, 3), np.inf))}}
        with pytest.raises(ModelError):
            batch_select(tables, MinTotalEnergy(), "steepest", 1.0)

    @pytest.mark.parametrize("selector", SELECTORS)
    def test_single_cell_and_single_column(self, selector):
        tables = {
            "cell": {("a", 1): make_table("a", 1, [[2.0]])},
            "col": {("a", 1): make_table("a", 1, [[5.0], [3.0], [4.0]])},
        }
        _scalar_vs_batch(tables, selector)

    @pytest.mark.parametrize("selector", SELECTORS)
    def test_mixed_table_signatures_group_independently(self, selector):
        """Kernels whose table sets differ in keys or shapes must batch
        in separate groups yet come back in input order."""
        rng = np.random.default_rng(5)
        tables = {
            "two_tables": {
                ("a", 1): make_table("a", 1, rng.uniform(1, 3, (6, 5))),
                ("b", 2): make_table("b", 2, rng.uniform(1, 3, (4, 3))),
            },
            "one_table": {
                ("a", 1): make_table("a", 1, rng.uniform(1, 3, (6, 5))),
            },
            "other_shape": {
                ("a", 1): make_table("a", 1, rng.uniform(1, 3, (3, 7))),
                ("b", 2): make_table("b", 2, rng.uniform(1, 3, (4, 3))),
            },
        }
        _scalar_vs_batch(tables, selector)
        out = batch_select(tables, MinTotalEnergy(), selector, 1.0)
        assert list(out) == ["two_tables", "one_table", "other_shape"]

    def test_unknown_selector_rejected(self):
        tables = {"k": {("a", 1): make_table("a", 1, [[1.0]])}}
        with pytest.raises(ModelError):
            batch_select(tables, MinTotalEnergy(), "newton", 1.0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), selector=st.sampled_from(SELECTORS))
    def test_property_random_grids_match_scalar(self, seed, selector):
        rng = np.random.default_rng(seed)
        tables = {
            f"k{i}": {
                ("a", 1): make_table("a", 1, rng.uniform(1, 4, (7, 5))),
                ("b", 2): make_table("b", 2, rng.uniform(1, 4, (7, 5))),
            }
            for i in range(4)
        }
        _scalar_vs_batch(tables, selector)


# ----------------------------------------------------------------------
# predict_blocks (the slice-matmul primitive under build_tables_batch)
# ----------------------------------------------------------------------
class TestPredictBlocks:
    def _fitted(self):
        from repro.models.mpr import PolynomialRegressor

        rng = np.random.default_rng(0)
        x = rng.uniform(0.1, 2.0, size=(60, 3))
        y = x[:, 0] + 0.5 * x[:, 1] * x[:, 2]
        reg = PolynomialRegressor(n_features=3, degree=2)
        reg.fit(x, y)
        return reg, rng

    def test_matches_per_block_predict_bitwise(self):
        reg, rng = self._fitted()
        block = 24
        for k in (1, 2, 5, 13):
            x = rng.uniform(0.1, 2.0, size=(k * block, 3))
            stacked = reg.predict_blocks(x, block)
            per_block = np.concatenate(
                [reg.predict(x[s:s + block]) for s in range(0, len(x), block)]
            )
            assert np.array_equal(stacked, per_block)

    def test_unfitted_rejected(self):
        from repro.models.mpr import PolynomialRegressor

        reg = PolynomialRegressor(n_features=3, degree=2)
        with pytest.raises(ModelError):
            reg.predict_blocks(np.ones((4, 3)), 2)

    def test_bad_block_sizes_rejected(self):
        reg, rng = self._fitted()
        x = rng.uniform(0.1, 2.0, size=(6, 3))
        with pytest.raises(ModelError):
            reg.predict_blocks(x, 0)
        with pytest.raises(ModelError):
            reg.predict_blocks(x, 4)  # 6 rows don't divide into 4s
