"""Tests for the adaptive drift monitor (extension feature)."""

from __future__ import annotations

import pytest

from repro.core import JossScheduler
from repro.core.adaptation import AdaptationPolicy
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskGraph


class TestPolicyUnit:
    def test_stationary_kernel_never_invalidates(self):
        pol = AdaptationPolicy(tolerance=0.3, patience=3)
        for _ in range(100):
            assert not pol.observe("k", measured=1.02, predicted=1.0)
        assert pol.invalidations == 0

    def test_sustained_drift_invalidates_after_patience(self):
        pol = AdaptationPolicy(tolerance=0.3, patience=3, min_observations=2)
        fired = [pol.observe("k", measured=3.0, predicted=1.0) for _ in range(20)]
        assert any(fired)
        # Sustained drift keeps re-firing after each reset.
        assert pol.invalidations >= 1
        # State was reset on the last firing or is relearning.
        last_fire = max(i for i, f in enumerate(fired) if f)
        if last_fire == len(fired) - 1:
            assert pol.state_of("k") is None

    def test_single_spike_tolerated(self):
        pol = AdaptationPolicy(tolerance=0.5, patience=3, min_observations=1)
        for _ in range(10):
            pol.observe("k", 1.0, 1.0)
        assert not pol.observe("k", 5.0, 1.0)  # one bad task
        for _ in range(5):
            assert not pol.observe("k", 1.0, 1.0)
        assert pol.invalidations == 0

    def test_disabled_policy_inert(self):
        pol = AdaptationPolicy(enabled=False, patience=1, min_observations=0)
        for _ in range(50):
            assert not pol.observe("k", 100.0, 1.0)

    def test_invalid_inputs_ignored(self):
        pol = AdaptationPolicy()
        assert not pol.observe("k", 0.0, 1.0)
        assert not pol.observe("k", 1.0, 0.0)

    def test_min_observations_warmup(self):
        """The EMA must warm up: gross drift within the first
        min_observations-1 completions never fires."""
        pol = AdaptationPolicy(tolerance=0.1, patience=1, min_observations=5)
        for _ in range(4):
            assert not pol.observe("k", 10.0, 1.0)
        assert pol.observe("k", 10.0, 1.0)  # fifth observation may fire

    def test_hysteresis_needs_both_ema_and_instant_out_of_band(self):
        """Violation-band hysteresis: after a drift episode pushes the
        EMA out of band, in-band instantaneous observations must NOT
        keep counting violations off the EMA's tail."""
        pol = AdaptationPolicy(tolerance=0.5, patience=3, min_observations=1, alpha=0.9)
        # Two strongly drifted observations: EMA ~3, violations = 2.
        assert not pol.observe("k", 3.0, 1.0)
        assert not pol.observe("k", 3.0, 1.0)
        st = pol.state_of("k")
        assert st is not None and st.violations == 2
        # Instantaneous back in band while the EMA is still way out:
        # the violation streak resets instead of reaching patience.
        assert not pol.observe("k", 1.0, 1.0)
        assert pol.state_of("k").violations == 0
        assert pol.invalidations == 0

    def test_violations_reset_when_ema_recovers(self):
        pol = AdaptationPolicy(tolerance=0.5, patience=10, min_observations=1, alpha=0.5)
        for _ in range(3):
            pol.observe("k", 3.0, 1.0)
        assert pol.state_of("k").violations > 0
        for _ in range(10):
            pol.observe("k", 1.0, 1.0)
        assert pol.state_of("k").violations == 0

    def test_reset(self):
        pol = AdaptationPolicy(patience=1, min_observations=1, tolerance=0.1)
        for _ in range(5):
            pol.observe("k", 3.0, 1.0)
        pol.reset()
        assert pol.invalidations == 0
        assert pol.state_of("k") is None


class TestSchedulerIntegration:
    @pytest.fixture(scope="class")
    def suite(self):
        return profile_and_fit(jetson_tx2, seed=0)

    def _graph(self, n=120):
        k = KernelSpec("ad.k", w_comp=0.08, w_bytes=0.004)
        g = TaskGraph("adapt")
        prev = None
        for _ in range(n // 4):
            layer = [g.add_task(k, deps=[prev] if prev else None) for _ in range(3)]
            prev = g.add_task(k, deps=layer)
        return g

    def test_run_completes_with_adaptation_enabled(self, suite):
        sched = JossScheduler(suite, adaptation=AdaptationPolicy())
        m = Executor(jetson_tx2(), sched, seed=7).run(self._graph())
        assert m.tasks_executed > 0
        assert "adaptation_invalidations" in m.extras

    def test_hair_trigger_policy_resamples_and_still_finishes(self, suite):
        """A pathological policy (invalidate on ~any error) must not
        deadlock: kernels bounce between sampling and decisions but the
        run drains."""
        pol = AdaptationPolicy(tolerance=0.005, patience=1, min_observations=1)
        sched = JossScheduler(suite, adaptation=pol)
        m = Executor(jetson_tx2(), sched, seed=7).run(self._graph())
        assert m.tasks_executed > 0
        assert m.extras["adaptation_invalidations"] >= 1

    def test_default_is_paper_behaviour(self, suite):
        """No adaptation configured: byte-identical to the published
        algorithm's results."""
        base = Executor(
            jetson_tx2(), JossScheduler(suite), seed=7
        ).run(self._graph())
        off = Executor(
            jetson_tx2(),
            JossScheduler(suite, adaptation=AdaptationPolicy(enabled=False)),
            seed=7,
        ).run(self._graph())
        assert base.total_energy == off.total_energy
        assert base.makespan == off.makespan

    def test_invalidation_re_enters_sampling(self, suite):
        """After an invalidation the kernel goes back through the
        sampling pipeline: strictly more placements take the sampling
        path than in an undisturbed run.  (``sampling_time`` is no
        oracle here — ``forget_kernel`` drops the previous pass's
        accumulated time along with its measurements.)"""

        class CountingJoss(JossScheduler):
            sample_placements = 0

            def place(self, task):
                p = super().place(task)
                if "sample_slot" in task.meta:
                    self.sample_placements += 1
                return p

        base_sched = CountingJoss(suite)
        Executor(jetson_tx2(), base_sched, seed=7).run(self._graph())
        pol = AdaptationPolicy(tolerance=0.005, patience=1, min_observations=1)
        sched = CountingJoss(suite, adaptation=pol)
        m = Executor(jetson_tx2(), sched, seed=7).run(self._graph())
        assert m.extras["adaptation_invalidations"] >= 1
        assert sched.sample_placements > base_sched.sample_placements
