"""Tests for the online sampling planner."""

from __future__ import annotations

import pytest

from repro.core.sampling import SamplingPlanner, SampleSlot

CONFIGS = [("denver", 1), ("denver", 2), ("a57", 1)]


def make(two=True):
    return SamplingPlanner(CONFIGS, f_c_ref=2.04, f_c_sample=1.11, two_frequencies=two)


class TestPlanShape:
    def test_two_frequency_plan_size(self):
        p = make()
        assert len(p.state("k").slots) == 2 * len(CONFIGS)

    def test_single_frequency_plan(self):
        p = make(two=False)
        slots = p.state("k").slots
        assert len(slots) == len(CONFIGS)
        assert all(s.f_c == 2.04 for s in slots)

    def test_reference_slots_first(self):
        slots = make().state("k").slots
        assert all(s.f_c == 2.04 for s in slots[: len(CONFIGS)])
        assert all(s.f_c == 1.11 for s in slots[len(CONFIGS):])


class TestPhases:
    def test_initial_phase_is_reference(self):
        p = make()
        p.state("k")
        assert p.phase("denver") == 2.04
        assert p.phase("a57") == 2.04

    def test_phase_advances_per_cluster(self):
        p = make()
        p.state("k")
        # Fill denver's reference slots only.
        p.record("k", SampleSlot("denver", 1, 2.04), 1.0)
        p.record("k", SampleSlot("denver", 2, 2.04), 0.6)
        assert p.phase("denver") == 1.11  # advanced asynchronously
        assert p.phase("a57") == 2.04     # still sampling at reference

    def test_phase_waits_for_all_kernels(self):
        p = make()
        p.state("k1")
        p.state("k2")
        p.record("k1", SampleSlot("denver", 1, 2.04), 1.0)
        p.record("k1", SampleSlot("denver", 2, 2.04), 0.6)
        assert p.phase("denver") == 2.04  # k2's denver refs missing
        p.record("k2", SampleSlot("denver", 1, 2.04), 1.0)
        p.record("k2", SampleSlot("denver", 2, 2.04), 0.6)
        assert p.phase("denver") == 1.11

    def test_next_slot_prefers_phase_matching(self):
        p = make()
        p.record("k", SampleSlot("denver", 1, 2.04), 1.0)
        p.record("k", SampleSlot("denver", 2, 2.04), 0.6)
        # denver advanced; pending mix of denver@1.11 and a57@2.04 —
        # both match their cluster phases, none mismatches.
        for _ in range(10):
            s = p.next_slot("k")
            assert p.phase(s.cluster) == s.f_c


class TestRecording:
    def test_first_measurement_wins(self):
        p = make()
        slot = SampleSlot("denver", 1, 2.04)
        p.record("k", slot, 1.0)
        p.record("k", slot, 99.0)
        assert p.state("k").results[slot] == 1.0

    def test_untrusted_discarded_until_limit(self):
        p = make()
        slot = SampleSlot("denver", 1, 2.04)
        for _ in range(p.MAX_REJECTIONS):
            p.record("k", slot, 1.0, trusted=False)
        assert slot not in p.state("k").results
        p.record("k", slot, 2.0, trusted=False)  # limit exceeded: accept
        assert p.state("k").results[slot] == 2.0

    def test_sampling_time_accumulates_even_when_discarded(self):
        p = make()
        slot = SampleSlot("denver", 1, 2.04)
        p.record("k", slot, 1.0, trusted=False)
        p.record("k", slot, 1.0)
        assert p.state("k").sampling_time == pytest.approx(2.0)
        assert p.total_sampling_time() == pytest.approx(2.0)

    def test_resolution(self):
        p = make()
        for cl, nc in CONFIGS:
            p.record("k", SampleSlot(cl, nc, 2.04), 1.0)
        assert not p.resolved("k")
        for cl, nc in CONFIGS:
            p.record("k", SampleSlot(cl, nc, 1.11), 1.6)
        assert p.resolved("k")

    def test_zero_duration_ignored(self):
        p = make()
        slot = SampleSlot("denver", 1, 2.04)
        p.record("k", slot, 0.0)
        assert slot not in p.state("k").results


class TestDerived:
    def test_reference_time_and_mb(self):
        p = make()
        # Pure compute: halving frequency (2.04 -> 1.11 is 1.838x)
        # scales time by 1.838 => MB = 0.
        p.record("k", SampleSlot("denver", 1, 2.04), 1.0)
        p.record("k", SampleSlot("denver", 1, 1.11), 2.04 / 1.11)
        assert p.reference_time("k", "denver", 1) == 1.0
        assert p.mb("k", "denver", 1) == pytest.approx(0.0, abs=1e-9)

    def test_mb_memory_bound(self):
        p = make()
        p.record("k", SampleSlot("a57", 1, 2.04), 1.0)
        p.record("k", SampleSlot("a57", 1, 1.11), 1.0)  # time unchanged
        assert p.mb("k", "a57", 1) == pytest.approx(1.0)

    def test_next_slot_cycles_through_pending(self):
        p = make()
        seen = {p.next_slot("k") for _ in range(len(CONFIGS))}
        assert len(seen) == len(CONFIGS)  # spread across configs
