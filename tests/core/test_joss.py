"""End-to-end tests of the JOSS scheduler."""

from __future__ import annotations

import pytest

from repro.core import JossScheduler
from repro.core.goals import MaxPerformance
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskGraph

COMPUTE = KernelSpec("compute", w_comp=0.5, w_bytes=0.004, type_affinity={"denver": 1.5})
MEMORY = KernelSpec("memory", w_comp=0.01, w_bytes=0.05)


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def mixed_graph(n_waves=25, width=6):
    g = TaskGraph("mixed")
    prev = None
    for _ in range(n_waves):
        layer = [
            g.add_task(COMPUTE if j % 2 else MEMORY, deps=[prev] if prev else None)
            for j in range(width)
        ]
        prev = g.add_task(COMPUTE, deps=layer)
    return g


def run(sched, graph=None, seed=7):
    ex = Executor(jetson_tx2(), sched, seed=seed)
    return ex.run(graph if graph is not None else mixed_graph())


class TestLifecycle:
    def test_completes_and_resolves_kernels(self, suite):
        sched = JossScheduler(suite)
        m = run(sched)
        assert m.tasks_executed == 25 * 7
        assert set(sched.decisions) == {"compute", "memory"}
        assert m.extras["selection_evaluations"] > 0

    def test_decisions_have_four_knobs(self, suite):
        sched = JossScheduler(suite)
        run(sched)
        for kname in ("compute", "memory"):
            sel, f_c, f_m = sched.require_decision(kname)
            cluster = jetson_tx2().cluster_by_type(sel.cluster)
            assert f_c in cluster.opps
            assert f_m in jetson_tx2().memory.opps

    def test_compute_kernel_lands_on_denver(self, suite):
        """The Denver-affine compute kernel should choose the Denver
        cluster (the paper's BMOD behaviour)."""
        sched = JossScheduler(suite)
        run(sched)
        sel, _, _ = sched.require_decision("compute")
        assert sel.cluster == "denver"

    def test_compute_kernel_drops_memory_frequency(self, suite):
        """A compute-bound kernel has no use for a fast memory bus; JOSS
        throttles f_M to save memory energy (section 7.1's BMOD story)."""
        sched = JossScheduler(suite)
        run(sched)
        _, _, f_m = sched.require_decision("compute")
        assert f_m < suite.f_m_ref

    def test_sampling_time_recorded(self, suite):
        m = run(JossScheduler(suite))
        assert m.sampling_time > 0
        assert m.sampling_fraction < 1.0

    def test_unresolved_decision_raises(self, suite):
        sched = JossScheduler(suite)
        from repro.errors import SchedulingError

        with pytest.raises(SchedulingError):
            sched.require_decision("nope")


class TestVariants:
    def test_no_mem_dvfs_never_touches_memory(self, suite):
        sched = JossScheduler.no_mem_dvfs(suite)
        ex = Executor(jetson_tx2(), sched, seed=7)
        ex.run(mixed_graph())
        # Memory frequency stays at the platform maximum throughout.
        assert ex.platform.memory.freq == ex.platform.memory.opps.max
        assert ex.memory_dvfs.transitions == 0

    def test_maxp_faster_than_default(self, suite):
        m_energy = run(JossScheduler(suite), mixed_graph())
        m_maxp = run(JossScheduler.maxp(suite), mixed_graph())
        assert m_maxp.makespan < m_energy.makespan
        assert m_maxp.total_energy > m_energy.total_energy * 0.9

    def test_speedup_constraint_between(self, suite):
        m_energy = run(JossScheduler(suite), mixed_graph())
        m_14 = run(JossScheduler.with_speedup(suite, 1.4), mixed_graph())
        m_maxp = run(JossScheduler.maxp(suite), mixed_graph())
        assert m_maxp.makespan <= m_14.makespan * 1.1
        assert m_14.makespan <= m_energy.makespan * 1.05

    def test_variant_names(self, suite):
        assert JossScheduler.no_mem_dvfs(suite).name == "JOSS_NoMemDVFS"
        assert JossScheduler.with_speedup(suite, 1.2).name == "JOSS_1.2x"
        assert JossScheduler.maxp(suite).name == "JOSS_MAXP"

    def test_goal_override(self, suite):
        sched = JossScheduler(suite, goal=MaxPerformance())
        assert sched.goal.name == "maxp"


class TestEnergyBehaviour:
    def test_joss_beats_grws_on_mixed_workload(self, suite):
        from repro.schedulers import GrwsScheduler

        m_grws = run(GrwsScheduler(), mixed_graph())
        m_joss = run(JossScheduler(suite), mixed_graph())
        assert m_joss.total_energy < m_grws.total_energy

    def test_deterministic(self, suite):
        m1 = run(JossScheduler(suite), mixed_graph(), seed=3)
        m2 = run(JossScheduler(suite), mixed_graph(), seed=3)
        assert m1.total_energy == m2.total_energy
        assert m1.makespan == m2.makespan

    def test_exhaustive_selector_close_to_steepest(self, suite):
        m_sd = run(JossScheduler(suite, selector="steepest"), mixed_graph())
        m_ex = run(JossScheduler(suite, selector="exhaustive"), mixed_graph())
        assert m_sd.total_energy <= m_ex.total_energy * 1.15
        assert (
            m_sd.extras["selection_evaluations"]
            < m_ex.extras["selection_evaluations"]
        )
