"""Tests for the repro.perf report schema and regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perf import (
    BenchRecord,
    PerfReport,
    gate_against_baseline,
)
from repro.perf.harness import SCHEMA_VERSION, PerfError


def _record(name="event_loop", value=1000.0, higher=True, metric="throughput",
            unit="events/s"):
    return BenchRecord(
        name=name, metric=metric, unit=unit, value=value,
        higher_is_better=higher, repeats=3, raw=[value, value * 1.01],
        params={"n_events": 100},
    )


def _report(records):
    return PerfReport(
        benchmarks={r.name: r for r in records},
        rev="deadbeef", timestamp="2026-01-01T00:00:00+00:00", quick=True,
    )


class TestBenchRecord:
    def test_ratio_higher_is_better(self):
        new, old = _record(value=2000.0), _record(value=1000.0)
        assert new.ratio_vs(old) == pytest.approx(2.0)

    def test_ratio_lower_is_better_inverts(self):
        new = _record(value=5.0, higher=False, metric="latency", unit="us")
        old = _record(value=10.0, higher=False, metric="latency", unit="us")
        # Halving a latency is a 2x improvement.
        assert new.ratio_vs(old) == pytest.approx(2.0)

    def test_ratio_nonpositive_is_nan(self):
        import math

        assert math.isnan(_record(value=0.0).ratio_vs(_record()))


class TestPerfReport:
    def test_roundtrip(self, tmp_path):
        rep = _report([_record(), _record(name="fig8_end_to_end",
                                          value=1.5, higher=False,
                                          metric="wall_time", unit="s")])
        path = tmp_path / "BENCH.json"
        rep.save(path)
        back = PerfReport.load(path)
        assert back.rev == rep.rev
        assert set(back.benchmarks) == set(rep.benchmarks)
        assert back.benchmarks["event_loop"].value == pytest.approx(1000.0)
        assert back.benchmarks["fig8_end_to_end"].higher_is_better is False

    def test_schema_version_pinned(self, tmp_path):
        rep = _report([_record()])
        d = rep.to_dict()
        assert d["schema_version"] == SCHEMA_VERSION
        d["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(d))
        with pytest.raises(PerfError):
            PerfReport.load(path)

    def test_compare_records_speedups(self):
        new = _report([_record(value=2000.0)])
        old = _report([_record(value=1000.0)])
        new.compare_to(old)
        assert new.speedups["event_loop"] == pytest.approx(2.0)
        assert new.baseline_rev == "deadbeef"

    def test_render_is_human_readable(self):
        text = _report([_record()]).render()
        assert "event_loop" in text and "events/s" in text


class TestGate:
    def test_pass_when_no_regression(self):
        new, old = _report([_record(value=990.0)]), _report([_record()])
        results = gate_against_baseline(new, old, benchmarks=("event_loop",))
        assert all(r.passed for r in results)

    def test_fail_beyond_threshold(self):
        new = _report([_record(value=600.0)])  # -40% vs 1000
        old = _report([_record(value=1000.0)])
        results = gate_against_baseline(
            new, old, benchmarks=("event_loop",), max_regression=0.30
        )
        assert any(not r.passed for r in results)

    def test_threshold_boundary(self):
        new = _report([_record(value=700.0)])  # exactly -30%
        old = _report([_record(value=1000.0)])
        results = gate_against_baseline(
            new, old, benchmarks=("event_loop",), max_regression=0.30
        )
        assert all(r.passed for r in results)

    def test_benchmark_missing_from_baseline_passes(self):
        new = _report([_record()])
        old = _report([_record(name="other")])
        results = gate_against_baseline(new, old, benchmarks=("event_loop",))
        assert all(r.passed for r in results)

    def test_benchmark_missing_from_report_raises(self):
        new = _report([_record(name="other")])
        old = _report([_record()])
        with pytest.raises(PerfError):
            gate_against_baseline(new, old, benchmarks=("event_loop",))
