"""Smoke tests for the microbenchmarks (quick shapes only — wall-time
assertions belong to the CI gate, not unit tests)."""

from __future__ import annotations

import pytest

from repro.perf import BENCHMARKS, run_benchmarks
from repro.perf.harness import PerfError


def test_benchmark_registry_names():
    assert set(BENCHMARKS) == {
        "event_loop", "state_changed", "retime", "mpr_predict",
        "fig8_end_to_end", "sweep_throughput", "obs_overhead",
        "batch_decision",
    }


def test_unknown_benchmark_rejected():
    with pytest.raises(PerfError):
        run_benchmarks(quick=True, benchmarks=("no_such_bench",))


@pytest.mark.parametrize("name", ["event_loop", "state_changed", "mpr_predict"])
def test_quick_benchmarks_produce_positive_metrics(name):
    records = run_benchmarks(quick=True, benchmarks=(name,))
    assert set(records) == {name}
    rec = records[name]
    assert rec.value > 0
    assert rec.repeats >= 1
    assert len(rec.raw) == rec.repeats
    assert all(t > 0 for t in rec.raw)  # raw holds elapsed seconds


def test_sweep_throughput_records_legacy_comparison():
    records = run_benchmarks(quick=True, benchmarks=("sweep_throughput",))
    rec = records["sweep_throughput"]
    assert rec.unit == "jobs/s" and rec.value > 0
    assert rec.params["jobs"] >= 64
    assert rec.params["workers"] >= 2
    assert rec.params["legacy_jobs_per_s"] > 0
    assert rec.params["speedup_vs_legacy"] > 0
    # The benchmark cleans up after itself: no lingering warm pool.
    from repro.sweep import active_pool

    assert active_pool() is None


def test_obs_overhead_records_subscribed_comparison():
    from repro.obs.api import current_observer

    records = run_benchmarks(quick=True, benchmarks=("obs_overhead",))
    rec = records["obs_overhead"]
    assert rec.unit == "runs/s" and rec.value > 0
    assert rec.params["subscribed_runs_per_s"] > 0
    assert rec.params["subscribed_over_silent"] > 0
    assert rec.params["events_per_run"] > 0  # the subscriber saw traffic
    # The benchmark cleans up after itself: no observer left installed.
    assert current_observer() is None


def test_progress_callback_invoked():
    seen = []
    run_benchmarks(quick=True, benchmarks=("event_loop",),
                   progress=seen.append)
    assert seen == ["event_loop"]
