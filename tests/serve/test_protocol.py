"""Wire-protocol encoding, validation and error mapping."""

from __future__ import annotations

import pytest

from repro.serve import protocol


def test_round_trip_request():
    doc = protocol.make_request(7, "submit", {"priority": 2}, tenant="ci")
    line = protocol.encode_line(doc)
    assert line.endswith(b"\n") and b"\n" not in line[:-1]
    req_id, method, tenant, params = protocol.parse_request(
        protocol.decode_line(line)
    )
    assert (req_id, method, tenant, params) == (7, "submit", "ci", {"priority": 2})


def test_default_tenant_applied():
    _, _, tenant, params = protocol.parse_request(
        {"id": 1, "method": "ping"}
    )
    assert tenant == protocol.DEFAULT_TENANT
    assert params == {}


@pytest.mark.parametrize("doc,code", [
    ({"method": "ping"}, protocol.BAD_REQUEST),             # missing id
    ({"id": 1}, protocol.BAD_REQUEST),                      # missing method
    ({"id": 1, "method": 7}, protocol.BAD_REQUEST),         # non-str method
    ({"id": 1, "method": "nope"}, protocol.UNKNOWN_METHOD),
    ({"id": 1, "method": "ping", "tenant": ""}, protocol.BAD_REQUEST),
    ({"id": 1, "method": "ping", "params": []}, protocol.BAD_REQUEST),
])
def test_request_validation(doc, code):
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_request(doc)
    assert exc.value.code == code


def test_decode_rejects_non_object_and_bad_json():
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(b"[1, 2]\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_line(b"{nope\n")


def test_result_or_raise():
    ok = protocol.make_response(3, {"pong": True})
    assert protocol.result_or_raise(ok) == {"pong": True}
    err = protocol.make_error(3, protocol.UNKNOWN_JOB, "gone")
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.result_or_raise(err)
    assert exc.value.code == protocol.UNKNOWN_JOB
    assert "gone" in str(exc.value)


def test_event_notification_shape():
    ev = protocol.make_event("j000001", {"type": "job_started", "time": 0.5})
    assert protocol.is_event(ev)
    assert not protocol.is_event(protocol.make_response(1, {}))
    # A response is never mistaken for an event even with an event key.
    assert not protocol.is_event({"id": 1, "event": {}})


def test_lifecycle_states_are_consistent():
    assert set(protocol.TERMINAL_STATES) < set(protocol.JOB_STATES)
    assert protocol.QUEUED not in protocol.TERMINAL_STATES
    assert protocol.RUNNING not in protocol.TERMINAL_STATES
