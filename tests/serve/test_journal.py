"""JobJournal framing/compaction and Server crash-recovery semantics.

The crash cases are simulated by authoring journal bytes directly (a
submit with no final IS the on-disk state a SIGKILL between append and
enqueue leaves behind) and then starting a fresh Server on that
journal — the same replay path ``repro serve --recover`` takes.
"""

from __future__ import annotations

import json
import struct
import threading
import time

import pytest

from repro.serve import JobJournal, ServeClient, ServeConfig, Server
from repro.serve.journal import MAGIC, final_record, interpret, submit_record
from repro.sweep.spec import JobSpec


def spec_for(seed: int = 11, workload: str = "hd-small") -> JobSpec:
    return JobSpec(workload=workload, scheduler="GRWS", seed=seed)


def fake_worker(spec: JobSpec) -> dict:
    return {"workload": spec.workload, "seed": spec.seed, "makespan": 1.0}


def addr(srv: Server) -> str:
    host, port = srv.tcp_address
    return f"{host}:{port}"


def write_journal(path, records) -> None:
    j = JobJournal(path)
    j.open()
    for rec in records:
        j.append(rec)
    j.close()


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def test_append_replay_round_trip(tmp_path):
    path = tmp_path / "j.journal"
    recs = [
        submit_record("j000001", "a", spec_for(1).to_dict(), 0, None, "k1"),
        final_record("j000001", "done", None, None, "h1", 0.5),
    ]
    write_journal(path, recs)
    replay = JobJournal(path).replay(truncate=False)
    assert replay.records == recs
    assert replay.torn_bytes == 0


def test_replay_truncates_torn_tail(tmp_path):
    path = tmp_path / "j.journal"
    write_journal(path, [
        submit_record("j000001", "a", spec_for(1).to_dict(), 0, None, None),
    ])
    intact = path.stat().st_size
    with open(path, "ab") as fh:
        fh.write(b"\x07garbage-that-is-not-a-frame")
    replay = JobJournal(path).replay(truncate=True)
    assert len(replay.records) == 1
    assert replay.torn_bytes > 0
    assert path.stat().st_size == intact  # tail physically removed


def test_replay_truncates_mid_frame_final(tmp_path):
    """A crash mid-way through writing the *final* record must lose only
    that final — the submit before it survives, so the job re-runs."""
    path = tmp_path / "j.journal"
    write_journal(path, [
        submit_record("j000001", "a", spec_for(1).to_dict(), 0, None, None),
        final_record("j000001", "done", None, None, "h1", 0.5),
    ])
    blob = path.read_bytes()
    path.write_bytes(blob[:-7])  # tear the last frame's tail off
    replay = JobJournal(path).replay(truncate=True)
    assert [r["t"] for r in replay.records] == ["submit"]
    state = interpret(replay.records)
    assert [r["job"] for r in state.pending] == ["j000001"]


def test_replay_rejects_corrupt_crc(tmp_path):
    path = tmp_path / "j.journal"
    write_journal(path, [
        submit_record("j000001", "a", spec_for(1).to_dict(), 0, None, None),
        submit_record("j000002", "a", spec_for(2).to_dict(), 0, None, None),
    ])
    blob = bytearray(path.read_bytes())
    # Flip a payload byte inside the second frame: CRC check must stop
    # replay there (everything after an undetectable point is suspect).
    first_len = struct.unpack_from("<I", blob, len(MAGIC))[0]
    second_payload = len(MAGIC) + 8 + first_len + 8 + 4
    blob[second_payload] ^= 0xFF
    path.write_bytes(bytes(blob))
    replay = JobJournal(path).replay(truncate=True)
    assert [r["job"] for r in replay.records] == ["j000001"]
    assert replay.torn_bytes > 0


def test_replay_missing_or_empty_file(tmp_path):
    assert JobJournal(tmp_path / "absent.journal").replay().records == []
    empty = tmp_path / "empty.journal"
    empty.write_bytes(b"")
    assert JobJournal(empty).replay().records == []


def test_compact_keeps_only_live_records(tmp_path):
    path = tmp_path / "j.journal"
    dead = [
        submit_record("j000001", "a", spec_for(1).to_dict(), 0, None, None),
        final_record("j000001", "done", None, None, "h1", 0.5),
    ]
    live = [submit_record("j000002", "b", spec_for(2).to_dict(), 0, None, None)]
    write_journal(path, dead + live)
    j = JobJournal(path)
    assert j.compact(live) == 1
    assert JobJournal(path).replay(truncate=False).records == live


def test_interpret_joins_finals_and_tracks_seq(tmp_path):
    recs = [
        submit_record("j000003", "a", spec_for(3).to_dict(), 0, None, "key-a"),
        submit_record("j000007", "b", spec_for(7).to_dict(), 1, 5.0, None),
        final_record("j000003", "done", None, None, "h3", 0.1),
        {"t": "idem", "key": "old", "job": "j000001", "hash": "h0",
         "state": "done"},
    ]
    state = interpret(recs)
    assert [r["job"] for r in state.pending] == ["j000007"]
    assert state.max_seq == 7
    assert state.idem["key-a"]["state"] == "done"
    assert state.idem["old"]["job"] == "j000001"


# ----------------------------------------------------------------------
# Server recovery
# ----------------------------------------------------------------------
def test_recovery_reenqueues_pending_submits(tmp_path):
    """SIGKILL between journal append and client ack: the submit record
    exists, no final — restart must run the job to completion."""
    journal = tmp_path / "serve.journal"
    write_journal(journal, [
        submit_record("j000001", "alice", spec_for(1).to_dict(), 0, None, None),
        submit_record("j000002", "bob", spec_for(2).to_dict(), 0, None, None),
    ])
    ran = []
    srv = Server(
        ServeConfig(cache_dir=tmp_path / "cache", journal_path=str(journal)),
        worker_fn=lambda s: (ran.append(s.seed), fake_worker(s))[1],
    ).start()
    try:
        assert srv.recovered_jobs == 2
        client = ServeClient(addr(srv), tenant="alice")
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            jobs = client.jobs()["jobs"]
            if all(j["state"] == "done" for j in jobs):
                break
            time.sleep(0.02)
        jobs = {j["id"]: j for j in client.jobs()["jobs"]}
        assert jobs["j000001"]["state"] == "done"
        assert jobs["j000001"]["recovered"] is True
        assert sorted(ran) == [1, 2]
        # New ids must not collide with recovered ones.
        fresh = client.submit(spec_for(9).to_dict())
        assert fresh["id"] == "j000003"
        client.close()
    finally:
        srv.close()


def test_recovery_serves_finished_work_from_cache(tmp_path):
    """Crash after cache write-back but before the final journal record:
    recovery must answer from the cache, not execute a second time."""
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "serve.journal"
    runs = []

    def counting_worker(s):
        runs.append(s.seed)
        return fake_worker(s)

    srv1 = Server(
        ServeConfig(cache_dir=cache_dir), worker_fn=counting_worker
    ).start()
    try:
        c1 = ServeClient(addr(srv1), tenant="a")
        job = c1.submit(spec_for(5).to_dict())
        deadline = time.monotonic() + 10
        while c1.status(job["id"])["state"] != "done":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        c1.close()
    finally:
        srv1.close()
    assert runs == [5]
    write_journal(journal, [
        submit_record("j000001", "a", spec_for(5).to_dict(), 0, None, None),
    ])
    srv2 = Server(
        ServeConfig(cache_dir=cache_dir, journal_path=str(journal)),
        worker_fn=counting_worker,
    ).start()
    try:
        c2 = ServeClient(addr(srv2), tenant="a")
        job = c2.status("j000001")
        assert job["state"] == "done"
        assert job["cached"] is True
        assert runs == [5]  # never re-executed
        c2.close()
    finally:
        srv2.close()


def test_recovery_discards_when_recover_disabled(tmp_path):
    journal = tmp_path / "serve.journal"
    write_journal(journal, [
        submit_record("j000001", "a", spec_for(1).to_dict(), 0, None, None),
    ])
    srv = Server(
        ServeConfig(
            cache_dir=tmp_path / "cache", journal_path=str(journal),
            recover=False,
        ),
        worker_fn=fake_worker,
    ).start()
    try:
        assert srv.recovered_jobs == 0
        assert len(srv._queue) == 0
    finally:
        srv.close()
    # The abandoned submit is compacted away, not left to re-surface.
    assert JobJournal(journal).replay(truncate=False).records == []


def test_recovery_preserves_tenant_fairness(tmp_path):
    """Bursts journaled as A,A,B,B,C,C must drain round-robin across
    tenants after recovery, exactly as live submissions would."""
    journal = tmp_path / "serve.journal"
    tenants = {}
    recs = []
    i = 0
    for tenant in ("alice", "bob", "carol"):
        for _ in range(2):
            i += 1
            tenants[i] = tenant
            recs.append(submit_record(
                f"j{i:06d}", tenant, spec_for(i).to_dict(), 0, None, None
            ))
    write_journal(journal, recs)
    order = []
    gate = threading.Event()

    def slow_worker(s):
        order.append(tenants[s.seed])
        if len(order) >= 6:
            gate.set()
        return fake_worker(s)

    srv = Server(
        ServeConfig(
            cache_dir=tmp_path / "cache", journal_path=str(journal),
            max_inflight=1,
        ),
        worker_fn=slow_worker,
    ).start()
    try:
        assert gate.wait(timeout=10)
        assert set(order[:3]) == {"alice", "bob", "carol"}
    finally:
        srv.close()


def test_duplicate_idempotency_key_across_restart(tmp_path):
    """A key settled before a restart answers from the journal-restored
    index — the job never runs twice."""
    cache_dir = tmp_path / "cache"
    journal = tmp_path / "serve.journal"
    runs = []

    def counting_worker(s):
        runs.append(s.seed)
        return fake_worker(s)

    srv1 = Server(
        ServeConfig(cache_dir=cache_dir, journal_path=str(journal)),
        worker_fn=counting_worker,
    ).start()
    try:
        c1 = ServeClient(addr(srv1), tenant="a")
        job = c1.submit(spec_for(6).to_dict(), idempotency_key="stable-key")
        deadline = time.monotonic() + 10
        while c1.status(job["id"])["state"] != "done":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        c1.close()
    finally:
        srv1.close()
    assert runs == [6]
    srv2 = Server(
        ServeConfig(cache_dir=cache_dir, journal_path=str(journal)),
        worker_fn=counting_worker,
    ).start()
    try:
        c2 = ServeClient(addr(srv2), tenant="a")
        replay = c2.submit(spec_for(6).to_dict(), idempotency_key="stable-key")
        assert replay.get("idempotent_replay") is True
        assert replay["state"] == "done"
        assert replay.get("metrics", {}).get("seed") == 6
        assert runs == [6]
        c2.close()
    finally:
        srv2.close()


def test_clean_shutdown_compacts_to_idempotency_index(tmp_path):
    journal = tmp_path / "serve.journal"
    srv = Server(
        ServeConfig(cache_dir=tmp_path / "cache", journal_path=str(journal)),
        worker_fn=fake_worker,
    ).start()
    try:
        c = ServeClient(addr(srv), tenant="a")
        job = c.submit(spec_for(4).to_dict(), idempotency_key="k4")
        deadline = time.monotonic() + 10
        while c.status(job["id"])["state"] != "done":
            assert time.monotonic() < deadline
            time.sleep(0.02)
        c.close()
    finally:
        srv.close()
    recs = JobJournal(journal).replay(truncate=False).records
    assert [r["t"] for r in recs] == ["idem"]
    assert recs[0]["key"] == "k4"


def test_journal_metrics_and_events(tmp_path):
    from repro.obs import Observability

    journal = tmp_path / "serve.journal"
    obs = Observability()
    seen = []
    obs.bus.subscribe(
        lambda ev: seen.append((ev.type, ev.fields.get("kind")))
    )
    with obs.as_current():
        srv = Server(
            ServeConfig(cache_dir=tmp_path / "cache",
                        journal_path=str(journal)),
            worker_fn=fake_worker,
        ).start()
    try:
        with ServeClient(addr(srv), tenant="a") as c:
            c.wait(c.submit(spec_for(8).to_dict())["id"])
        snap = srv.metrics.snapshot()
        appends = snap["repro_serve_journal_appends_total"]["series"]
        assert appends.get('kind=submit') == 1
        assert appends.get('kind=final') == 1
    finally:
        srv.close()
    kinds = [k for t, k in seen if t == "job_journaled"]
    assert kinds == ["submit", "final"]
