"""Admission control + circuit breaker: unit level and through a live
in-process Server (overload shedding, cached-work bypass, breaker
trip / probe / reclose)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve import (
    AdmissionController,
    CircuitBreaker,
    ProtocolError,
    ServeClient,
    ServeConfig,
    Server,
)
from repro.serve import protocol
from repro.serve.admission import CLOSED, HALF_OPEN, OPEN, DEFAULT_COST_S
from repro.sweep.spec import JobSpec


def spec_for(seed: int = 11) -> JobSpec:
    return JobSpec(workload="hd-small", scheduler="GRWS", seed=seed)


def fake_worker(spec: JobSpec) -> dict:
    return {"seed": spec.seed, "makespan": 1.0}


def addr(srv: Server) -> str:
    host, port = srv.tcp_address
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# AdmissionController (unit)
# ----------------------------------------------------------------------
def test_admission_disabled_admits_everything():
    ctl = AdmissionController(capacity=2)
    assert not ctl.enabled
    assert ctl.check("t", 10_000, {"t": 10_000}) is None


def test_admission_global_depth_cap():
    ctl = AdmissionController(max_queue_depth=3, capacity=1)
    assert ctl.check("a", 2, {"a": 2}) is None
    rej = ctl.check("a", 3, {"a": 3})
    assert rej is not None
    assert rej.code == "global-depth"
    assert rej.retry_after >= 0.05
    assert "retry after" in rej.message()
    assert ctl.rejected == 1


def test_admission_tenant_depth_cap():
    ctl = AdmissionController(max_tenant_depth=2, capacity=1)
    # Global depth high but *this* tenant under its cap: admitted.
    assert ctl.check("a", 50, {"a": 1, "b": 49}) is None
    rej = ctl.check("b", 50, {"a": 1, "b": 49})
    assert rej is not None and rej.code == "tenant-depth"


def test_admission_queued_cost_cap_uses_ema():
    ctl = AdmissionController(max_queued_cost_s=10.0, capacity=1)
    # No samples yet: DEFAULT_COST_S per job.
    assert ctl.est_cost_s == DEFAULT_COST_S
    assert ctl.check("a", 4, {"a": 4}) is None  # 4 * 0.5 = 2 s
    for _ in range(40):
        ctl.observe_cost(4.0)  # EMA converges towards 4 s/job
    assert ctl.est_cost_s > 3.0
    rej = ctl.check("a", 4, {"a": 4})  # now ~16 s of queued work
    assert rej is not None and rej.code == "queued-cost"


def test_admission_seed_cost_only_before_first_sample():
    ctl = AdmissionController(max_queue_depth=1, capacity=1)
    ctl.seed_cost(2.0)
    assert ctl.est_cost_s == 2.0
    ctl.seed_cost(9.0)  # a hint never overrides a live estimate
    assert ctl.est_cost_s == 2.0
    ctl.observe_cost(1.0)
    assert ctl.est_cost_s < 2.0


def test_admission_retry_after_clamped():
    ctl = AdmissionController(max_queue_depth=1, capacity=4)
    ctl.observe_cost(0.001)
    assert ctl.retry_after(1) == pytest.approx(0.05)
    ctl2 = AdmissionController(max_queue_depth=1, capacity=1)
    ctl2.observe_cost(10_000.0)
    assert ctl2.retry_after(100) == pytest.approx(60.0)


# ----------------------------------------------------------------------
# CircuitBreaker (unit, fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t


def test_breaker_trips_after_threshold_and_recloses():
    clock = FakeClock()
    seen = []
    br = CircuitBreaker(threshold=3, cooldown_s=5.0, clock=clock,
                        on_transition=lambda o, n: seen.append((o, n)))
    assert br.allow()
    br.record_failure()
    br.record_failure()
    assert br.state == CLOSED and br.allow()
    br.record_failure()  # third consecutive: open
    assert br.state == OPEN and br.trips == 1
    assert not br.allow()
    assert br.retry_after() == pytest.approx(5.0)
    clock.t = 4.9
    assert not br.allow()
    clock.t = 5.1
    assert br.allow()  # half-open probe admitted
    assert br.state == HALF_OPEN
    assert not br.allow()  # only one probe at a time
    br.record_success()
    assert br.state == CLOSED and br.allow()
    assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]


def test_breaker_probe_failure_reopens():
    clock = FakeClock()
    br = CircuitBreaker(threshold=2, cooldown_s=1.0, clock=clock)
    br.record_failure()
    br.record_failure()
    clock.t = 1.5
    assert br.allow()
    br.record_failure()  # probe failed: straight back to open
    assert br.state == OPEN and br.trips == 2
    assert not br.allow()
    clock.t = 2.0  # cooldown restarts from the probe failure
    assert not br.allow()
    clock.t = 2.6
    assert br.allow()


def test_breaker_late_failure_extends_open_window():
    clock = FakeClock()
    br = CircuitBreaker(threshold=1, cooldown_s=2.0, clock=clock)
    br.record_failure()
    assert br.state == OPEN
    clock.t = 1.9
    br.record_failure()  # in-flight straggler fails while open
    clock.t = 2.1  # original window elapsed, extended one has not
    assert not br.allow()
    clock.t = 3.9 + 0.05
    assert br.allow()


def test_breaker_release_probe_frees_slot_without_verdict():
    clock = FakeClock()
    br = CircuitBreaker(threshold=1, cooldown_s=1.0, clock=clock)
    br.record_failure()
    clock.t = 1.5
    assert br.allow() and br.state == HALF_OPEN
    br.release_probe()  # probe job was cancelled: no verdict
    assert br.allow()  # next probe may go
    assert br.state == HALF_OPEN


def test_breaker_disabled_never_blocks():
    br = CircuitBreaker(threshold=0, cooldown_s=1.0)
    for _ in range(10):
        br.record_failure()
    assert br.state == CLOSED
    assert br.allow()


# ----------------------------------------------------------------------
# Through a live server
# ----------------------------------------------------------------------
def test_overload_sheds_with_retry_after_and_serves_cached(tmp_path):
    """Saturate a 1-slot server past its queue cap: fresh submissions
    shed with ``resource-exhausted`` + ``retry_after`` while already-
    cached work keeps completing."""
    gate = threading.Event()

    def gated_worker(spec: JobSpec) -> dict:
        if spec.seed >= 100:
            gate.wait(timeout=10)
        return fake_worker(spec)

    srv = Server(
        ServeConfig(
            cache_dir=tmp_path / "cache", max_inflight=1,
            max_queue_depth=2,
        ),
        worker_fn=gated_worker,
    ).start()
    try:
        with ServeClient(addr(srv), tenant="a") as c:
            # Warm the cache while the server is idle.
            c.wait(c.submit(spec_for(1).to_dict())["id"])
            # One in flight (blocked on the gate) + two queued.
            c.submit(spec_for(100).to_dict())
            deadline = time.monotonic() + 5
            while srv._inflight == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            c.submit(spec_for(101).to_dict())
            c.submit(spec_for(102).to_dict())
            with pytest.raises(ProtocolError) as exc_info:
                c.submit(spec_for(103).to_dict())
            err = exc_info.value
            assert err.code == protocol.RESOURCE_EXHAUSTED
            assert err.retry_after is not None and err.retry_after >= 0.05
            # Cached work still serves while the queue is full.
            hit = c.submit(spec_for(1).to_dict())
            assert hit["state"] == "done" and hit["cached"] is True
            gate.set()
            for jid in ("j000002", "j000003", "j000004"):
                assert c.wait(jid)["state"] == "done"
        snap = srv.metrics.snapshot()
        shed = snap["repro_serve_admission_rejected_total"]["series"]
        assert sum(shed.values()) == 1
        assert any("global-depth" in key for key in shed)
    finally:
        gate.set()
        srv.close()


def test_breaker_trips_on_timeouts_and_recloses(tmp_path):
    """Consecutive substrate-level failures (timeouts) open the breaker;
    after the cooldown one probe dispatches and its success recloses."""
    gate = threading.Event()

    def gated_worker(spec: JobSpec) -> dict:
        if spec.seed >= 100:
            gate.wait(timeout=10)
        return fake_worker(spec)

    srv = Server(
        ServeConfig(
            cache_dir=tmp_path / "cache", max_inflight=2,
            breaker_threshold=2, breaker_cooldown_s=0.3,
        ),
        worker_fn=gated_worker,
    ).start()
    try:
        with ServeClient(addr(srv), tenant="a") as c:
            first = c.wait(c.submit(spec_for(100).to_dict(), timeout=0.1)["id"])
            second = c.wait(c.submit(spec_for(101).to_dict(), timeout=0.1)["id"])
            assert first["state"] == second["state"] == "timeout"
            assert srv.breaker.state == OPEN
            gate.set()  # unblock the leaked worker threads
            # Queued work waits out the cooldown, then the probe runs
            # and its success recloses the breaker.
            done = c.wait(c.submit(spec_for(2).to_dict())["id"])
            assert done["state"] == "done"
            assert srv.breaker.state == CLOSED
            assert srv.breaker.trips == 1
        snap = srv.metrics.snapshot()
        assert snap["repro_serve_breaker_trips_total"]["series"] == {"": 1}
        assert snap["repro_serve_timeout_leaked"]["series"] == {"": 2}
    finally:
        gate.set()
        srv.close()


def test_breaker_shed_policy_rejects_while_open(tmp_path):
    srv = Server(
        ServeConfig(
            cache_dir=tmp_path / "cache", breaker_threshold=2,
            breaker_cooldown_s=30.0, breaker_shed=True,
        ),
        worker_fn=fake_worker,
    ).start()
    try:
        with ServeClient(addr(srv), tenant="a") as c:
            c.wait(c.submit(spec_for(1).to_dict())["id"])  # warm the cache
            with srv._lock:
                srv.breaker.record_failure()
                srv.breaker.record_failure()
            assert srv.breaker.state == OPEN
            with pytest.raises(ProtocolError) as exc_info:
                c.submit(spec_for(50).to_dict())
            assert exc_info.value.code == protocol.RESOURCE_EXHAUSTED
            assert exc_info.value.retry_after is not None
            # Cache hits bypass the shed policy entirely.
            hit = c.submit(spec_for(1).to_dict())
            assert hit["state"] == "done" and hit["cached"] is True
    finally:
        with srv._lock:
            srv.breaker.record_success()
        srv.close()


def test_breaker_does_not_wedge_drain(tmp_path):
    """An open breaker must not block shutdown: drain bypasses it."""
    srv = Server(
        ServeConfig(
            cache_dir=tmp_path / "cache", breaker_threshold=1,
            breaker_cooldown_s=60.0,
        ),
        worker_fn=fake_worker,
    ).start()
    try:
        with ServeClient(addr(srv), tenant="a") as c:
            with srv._lock:
                srv.breaker.record_failure()
            assert srv.breaker.state == OPEN
            job = c.submit(spec_for(7).to_dict())
            c.shutdown(drain=True)
        srv.serve_forever()  # returns once drained
        assert srv._jobs[job["id"]].state == "done"
    finally:
        srv.close()
