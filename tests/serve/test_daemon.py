"""End-to-end daemon integration: a real ``repro serve`` subprocess.

Covers the PR's acceptance contract: >= 8 concurrent submissions from
>= 3 tenants executed over the warm worker pool, results bit-identical
to direct :func:`repro.bench.run` calls, a duplicate submission
answered from the cache without a pool dispatch, and SIGTERM draining
in-flight work before exit.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.bench import BenchConfig
from repro.bench import run as bench_run
from repro.runtime.metrics import RunMetrics, average_run_metrics
from repro.serve import ServeClient

REPO = Path(__file__).resolve().parents[2]

#: The grid the daemon executes: 4 specs x 2 repetitions = 8 jobs,
#: spread over 3 tenants.  Model-free schedulers keep this fast.
GRID = [("hd-small", "GRWS"), ("hd-small", "CATA"),
        ("fb", "GRWS"), ("fb", "Aequitas")]
REPETITIONS = 2
SCALE = 0.5


def start_daemon(tmp_path: Path, *extra: str) -> tuple[subprocess.Popen, str]:
    ready = tmp_path / "ready.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_SERVE_ADDR", None)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--workers", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--ready-file", str(ready),
            "--events-out", str(tmp_path / "events.jsonl"),
            *extra,
        ],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + 60
    while not ready.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon died during startup:\n{proc.stdout.read()}"
            )
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("daemon never wrote its ready file")
        time.sleep(0.05)
    return proc, json.loads(ready.read_text())["tcp"]


def stop_daemon(proc: subprocess.Popen, timeout: float = 120) -> str:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        # Bounded second read: an orphaned pool worker holding the
        # inherited stdout pipe would block an unbounded communicate()
        # even after the daemon itself is dead.
        try:
            out, _ = proc.communicate(timeout=10)
        except subprocess.TimeoutExpired:
            out = "<stdout pipe held open by a surviving child>"
        raise AssertionError(f"daemon did not exit after SIGTERM:\n{out}")
    return out


@pytest.mark.slow
def test_daemon_end_to_end(tmp_path):
    proc, addr = start_daemon(tmp_path)
    try:
        # -- 8 concurrent submissions from 3 tenants over the pool ----
        def submit_and_wait(idx: int) -> tuple:
            workload, scheduler = GRID[idx % len(GRID)]
            rep = idx // len(GRID)
            cfg = BenchConfig(scale=SCALE)
            with ServeClient(addr, tenant=f"tenant-{idx % 3}") as c:
                spec = cfg.job_spec(workload, scheduler, rep)
                job = c.submit(spec, timeout=300)
                done = c.wait(job["id"], timeout=300)
            return (workload, scheduler, rep), done

        n_jobs = len(GRID) * REPETITIONS
        with ThreadPoolExecutor(max_workers=n_jobs) as pool:
            outcomes = dict(pool.map(submit_and_wait, range(n_jobs)))
        assert len(outcomes) == n_jobs == 8
        for key, done in outcomes.items():
            assert done["state"] == "done", f"{key}: {done['error']}"
            assert done["mode"] == "pool", "jobs must run on the warm pool"
            assert done["cached"] is False

        # -- bit-identical to direct repro.bench.run ------------------
        for workload, scheduler in GRID:
            served = average_run_metrics([
                RunMetrics.from_dict(
                    outcomes[(workload, scheduler, r)]["metrics"]
                )
                for r in range(REPETITIONS)
            ])
            direct = bench_run(
                (workload, scheduler),
                config=BenchConfig(scale=SCALE, repetitions=REPETITIONS),
            )
            assert served.to_dict() == json.loads(
                json.dumps(direct.to_dict())
            ), f"{workload}/{scheduler}: served result drifted from bench"

        # -- duplicate answered from cache, no pool dispatch ----------
        with ServeClient(addr) as c:
            before = c.metrics()["snapshot"]
            dup_spec = BenchConfig(scale=SCALE).job_spec(*GRID[0], 0)
            dup = c.submit(dup_spec)
            assert dup["state"] == "done"
            assert dup["cached"] is True
            original = outcomes[(GRID[0][0], GRID[0][1], 0)]
            assert dup["metrics"] == original["metrics"]
            after = c.metrics()["snapshot"]
        dispatches = "repro_serve_pool_dispatch_total"
        assert after[dispatches]["series"] == before[dispatches]["series"], (
            "a cache hit must not occupy a pool slot"
        )
        assert after["repro_serve_cache_hits_total"]["series"] == {"": 1}
    finally:
        out = stop_daemon(proc)

    assert proc.returncode == 0, out
    assert "draining" in out and "stopped" in out

    # The daemon's JSONL event log recorded the full job lifecycle.
    events = [
        json.loads(line)
        for line in (tmp_path / "events.jsonl").read_text().splitlines()
    ]
    types = {ev["type"] for ev in events}
    assert {"serve_started", "job_submitted", "job_started",
            "job_finished", "serve_draining", "serve_stopped"} <= types
    finished = [ev for ev in events if ev["type"] == "job_finished"]
    assert len(finished) == 9  # 8 executed + 1 cache hit
    assert sum(1 for ev in finished if ev["cached"]) == 1


@pytest.mark.slow
def test_sigterm_drains_inflight_before_exit(tmp_path):
    proc, addr = start_daemon(tmp_path)
    try:
        with ServeClient(addr) as c:
            spec = BenchConfig(scale=SCALE).job_spec("hd-small", "GRWS", 0)
            job = c.submit(spec, timeout=300)
            # SIGTERM lands while the job is queued or running...
            proc.send_signal(signal.SIGTERM)
    finally:
        out = stop_daemon(proc)
    assert proc.returncode == 0, out
    # ...yet the job still reached a successful completion: the drain
    # waited for it instead of dropping it.
    events = [
        json.loads(line)
        for line in (tmp_path / "events.jsonl").read_text().splitlines()
    ]
    finished = [ev for ev in events if ev["type"] == "job_finished"]
    assert [ev["job"] for ev in finished] == [job["id"]]
    stopped = [ev for ev in events if ev["type"] == "serve_stopped"]
    assert stopped and stopped[0]["reason"] == "drained"
