"""Weighted-fair-queueing guarantees of the serve FairQueue.

Pins the scheduling contract the daemon sells to tenants: proportional
drain under skewed submission rates, weight ratios, no credit
hoarding, and priorities that preempt within — never across — a
tenant's share.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.errors import ServeError
from repro.serve.queue import FairQueue


def drain_order(q: FairQueue) -> list:
    return [e.item for e in q.drain()]


def test_fifo_within_single_tenant():
    q = FairQueue()
    for i in range(5):
        q.push(i, tenant="a")
    assert drain_order(q) == [0, 1, 2, 3, 4]


def test_skewed_submission_rates_drain_fairly():
    # Tenant "heavy" floods 300 jobs; "light1"/"light2" submit 30 each.
    # While all three are backlogged, service must be 1:1:1 — the
    # flood buys heavy no extra share.
    q = FairQueue()
    for i in range(300):
        q.push(("heavy", i), tenant="heavy")
    for i in range(30):
        q.push(("light1", i), tenant="light1")
        q.push(("light2", i), tenant="light2")
    first90 = [q.pop().item[0] for _ in range(90)]
    counts = Counter(first90)
    assert counts == {"heavy": 30, "light1": 30, "light2": 30}
    # In any aligned window of 30 pops, no tenant exceeds its share +1.
    for lo in range(0, 90, 30):
        window = Counter(first90[lo:lo + 30])
        assert max(window.values()) <= 11
    # Once the light tenants drain, heavy gets the remaining capacity.
    rest = [q.pop().item[0] for _ in range(len(q))]
    assert Counter(rest) == Counter({"heavy": 270})


def test_weights_set_the_service_ratio():
    q = FairQueue(weights={"paid": 2.0, "free": 1.0})
    for i in range(200):
        q.push(("paid", i), tenant="paid")
        q.push(("free", i), tenant="free")
    first90 = [q.pop().item[0] for _ in range(90)]
    counts = Counter(first90)
    # 2:1 within rounding of the DRR round structure.
    assert counts["paid"] == pytest.approx(60, abs=2)
    assert counts["free"] == pytest.approx(30, abs=2)


def test_priorities_preempt_within_tenant_only():
    q = FairQueue()
    # Tenant a queues three normal jobs, then an urgent one; tenant b
    # queues normal jobs only.
    for i in range(3):
        q.push(("a", "normal", i), tenant="a")
        q.push(("b", "normal", i), tenant="b")
    q.push(("a", "urgent", 0), tenant="a", priority=10)
    order = drain_order(q)
    # Within tenant a, the urgent job runs first...
    a_jobs = [item for item in order if item[0] == "a"]
    assert a_jobs[0] == ("a", "urgent", 0)
    assert a_jobs[1:] == [("a", "normal", 0), ("a", "normal", 1),
                          ("a", "normal", 2)]
    # ...but tenant b's alternating share is untouched: b still gets
    # one of the first two slots and half of the first six.
    assert "b" in {order[0][0], order[1][0]}
    assert Counter(item[0] for item in order[:6]) == {"a": 3, "b": 3}


def test_idle_tenant_cannot_hoard_credits():
    q = FairQueue()
    # Tenant a drains completely (earning rotations), then both tenants
    # submit a burst: a's old credit must not let it bulldoze b.
    for i in range(4):
        q.push(("a", i), tenant="a")
    assert len(drain_order(q)) == 4
    for i in range(20):
        q.push(("a", i), tenant="a")
        q.push(("b", i), tenant="b")
    first10 = [q.pop().item[0] for _ in range(10)]
    assert Counter(first10) == {"a": 5, "b": 5}


def test_cancel_removes_in_place():
    q = FairQueue()
    keep = q.push("keep", tenant="a")
    drop = q.push("drop", tenant="a")
    assert q.cancel(drop) is True
    assert q.cancel(drop) is False  # second cancel is a no-op
    assert len(q) == 1
    assert q.depths() == {"a": 1}
    assert [e.item for e in q.drain()] == ["keep"]
    assert keep.alive


def test_cancelling_a_whole_tenant_deactivates_it():
    q = FairQueue()
    entries = [q.push(i, tenant="ghost") for i in range(3)]
    q.push("real", tenant="b")
    for e in entries:
        q.cancel(e)
    assert drain_order(q) == ["real"]
    assert len(q) == 0
    assert q.depths() == {}


def test_costs_weigh_against_the_deficit():
    # One expensive job (cost 3) counts as three cheap ones: while both
    # tenants are backlogged, "cheap" receives ~3 jobs per "pricey" job.
    q = FairQueue()
    for i in range(10):
        q.push(("pricey", i), tenant="pricey", cost=3.0)
    for i in range(30):
        q.push(("cheap", i), tenant="cheap", cost=1.0)
    first12 = [q.pop().item[0] for _ in range(12)]
    counts = Counter(first12)
    assert counts["cheap"] == pytest.approx(9, abs=1)
    assert counts["pricey"] == pytest.approx(3, abs=1)


def test_set_weight_applies_to_live_tenant():
    q = FairQueue()
    for i in range(100):
        q.push(("a", i), tenant="a")
        q.push(("b", i), tenant="b")
    q.set_weight("a", 3.0)
    first40 = [q.pop().item[0] for _ in range(40)]
    counts = Counter(first40)
    assert counts["a"] == pytest.approx(30, abs=2)


def test_validation():
    with pytest.raises(ServeError):
        FairQueue(quantum=0)
    with pytest.raises(ServeError):
        FairQueue(default_weight=-1)
    with pytest.raises(ServeError):
        FairQueue(weights={"a": 0})
    q = FairQueue()
    with pytest.raises(ServeError):
        q.push("x", tenant="a", cost=0)
    with pytest.raises(ServeError):
        q.set_weight("a", 0)


def test_pop_on_empty_returns_none():
    q = FairQueue()
    assert q.pop() is None
    q.push("x", tenant="a")
    assert q.pop().item == "x"
    assert q.pop() is None
    assert len(q) == 0


def test_deadline_orders_within_tenant_and_priority():
    q = FairQueue()
    q.push("late", tenant="a", deadline=9.0)
    q.push("none", tenant="a")
    q.push("soon", tenant="a", deadline=1.0)
    q.push("mid", tenant="a", deadline=5.0)
    assert [q.pop().item for _ in range(4)] == ["soon", "mid", "late", "none"]


def test_priority_beats_deadline():
    q = FairQueue()
    q.push("urgent-deadline", tenant="a", priority=0, deadline=0.001)
    q.push("high-priority", tenant="a", priority=5)
    assert q.pop().item == "high-priority"


def test_equal_deadlines_fall_back_to_fifo():
    q = FairQueue()
    q.push("first", tenant="a", deadline=2.0)
    q.push("second", tenant="a", deadline=2.0)
    assert [q.pop().item, q.pop().item] == ["first", "second"]
