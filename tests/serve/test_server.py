"""In-process Server + ServeClient tests (fast: substituted worker_fn).

The daemon-in-a-subprocess integration path lives in test_daemon.py;
here the Server runs inside the test process so we can reach into its
queue, metrics and observer plumbing directly.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import Observability
from repro.serve import (
    ProtocolError,
    ServeClient,
    ServeConfig,
    Server,
    parse_address,
    protocol,
)
from repro.sweep.spec import JobSpec


def spec_for(seed: int = 11, workload: str = "hd-small") -> JobSpec:
    return JobSpec(workload=workload, scheduler="GRWS", seed=seed)


def fake_worker(spec: JobSpec) -> dict:
    return {
        "workload": spec.workload,
        "scheduler": spec.scheduler,
        "seed": spec.seed,
        "makespan": 1.0,
    }


@pytest.fixture
def server(tmp_path):
    srv = Server(
        ServeConfig(cache_dir=tmp_path / "cache"), worker_fn=fake_worker
    ).start()
    yield srv
    srv.close()


def addr(srv: Server) -> str:
    host, port = srv.tcp_address
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Address parsing
# ----------------------------------------------------------------------
def test_parse_address_forms():
    assert parse_address("127.0.0.1:7341") == ("tcp", ("127.0.0.1", 7341))
    assert parse_address(":7341") == ("tcp", ("127.0.0.1", 7341))
    assert parse_address("7341") == ("tcp", ("127.0.0.1", 7341))
    assert parse_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    from repro.errors import ServeError

    with pytest.raises(ServeError):
        parse_address("not-a-port")
    with pytest.raises(ServeError):
        parse_address("unix:")


# ----------------------------------------------------------------------
# Basic RPC surface
# ----------------------------------------------------------------------
def test_ping_and_submit_roundtrip(server):
    with ServeClient(addr(server)) as c:
        pong = c.ping()
        assert pong["pong"] and pong["state"] == "serving"
        job = c.submit(spec_for())
        assert job["state"] in ("queued", "running", "done")
        done = c.wait(job["id"])
        assert done["state"] == "done"
        assert done["metrics"]["workload"] == "hd-small"
        assert done["mode"] == "inline"
        # status without result omits the metrics payload
        slim = c.status(job["id"], result=False)
        assert "metrics" not in slim


def test_duplicate_submission_served_from_cache(server):
    with ServeClient(addr(server)) as c:
        first = c.wait(c.submit(spec_for())["id"])
        assert first["cached"] is False
        second = c.submit(spec_for())  # identical spec
        assert second["state"] == "done"
        assert second["cached"] is True
        assert second["metrics"] == first["metrics"]
    # The duplicate never occupied an execution slot.
    snap = server.metrics.snapshot()
    assert snap["repro_serve_cache_hits_total"]["series"] == {"": 1}
    assert snap["repro_serve_inline_dispatch_total"]["series"] == {"": 1}


def test_cache_disabled_reexecutes(tmp_path):
    srv = Server(
        ServeConfig(cache_dir=tmp_path, use_cache=False),
        worker_fn=fake_worker,
    ).start()
    try:
        with ServeClient(addr(srv)) as c:
            c.wait(c.submit(spec_for())["id"])
            again = c.submit(spec_for())
            assert again["cached"] is False
            c.wait(again["id"])
        snap = srv.metrics.snapshot()
        assert snap["repro_serve_inline_dispatch_total"]["series"] == {"": 2}
    finally:
        srv.close()


def test_concurrent_multi_tenant_submissions(server):
    # >= 8 concurrent submissions from >= 3 tenants, all through one
    # daemon; every job completes and results are per-spec consistent.
    def one(i: int) -> dict:
        with ServeClient(addr(server), tenant=f"t{i % 3}") as c:
            job = c.submit(spec_for(seed=i), timeout=60)
            return c.wait(job["id"])

    with ThreadPoolExecutor(max_workers=8) as pool:
        jobs = list(pool.map(one, range(8)))
    assert all(j["state"] == "done" for j in jobs)
    for i, j in enumerate(jobs):
        assert j["metrics"]["seed"] == i
        assert j["tenant"] == f"t{i % 3}"
    snap = server.metrics.snapshot()
    tenants = {
        key.split("=", 1)[1]
        for key in snap["repro_serve_jobs_submitted_total"]["series"]
    }
    assert tenants == {"t0", "t1", "t2"}


def test_unix_socket_transport(tmp_path):
    path = tmp_path / "serve.sock"
    srv = Server(
        ServeConfig(cache_dir=tmp_path / "c", unix_path=str(path)),
        worker_fn=fake_worker,
    ).start()
    try:
        assert path.exists()
        with ServeClient(f"unix:{path}") as c:
            assert c.ping()["pong"]
            done = c.wait(c.submit(spec_for())["id"])
            assert done["state"] == "done"
    finally:
        srv.close()
    assert not path.exists(), "unix socket must be unlinked on shutdown"


# ----------------------------------------------------------------------
# Follow streams + per-request observability scoping
# ----------------------------------------------------------------------
def test_follow_stream_yields_lifecycle_then_job(server):
    with ServeClient(addr(server)) as c:
        stream = c.submit(spec_for(seed=77), follow=True)
        kinds = []
        for kind, doc in stream:
            kinds.append(doc["event"]["type"] if kind == "event" else "JOB")
        assert kinds[0] == "job_submitted"
        assert "job_started" in kinds
        assert kinds[-2:] == ["job_finished", "JOB"]
        assert stream.job["state"] == "done"


def test_followers_only_see_their_own_jobs_events(tmp_path):
    # Two jobs running concurrently, each followed by its own client:
    # the contextvar-scoped per-job observer must keep their event
    # streams disjoint.
    gate = threading.Barrier(3, timeout=30)

    def emitting_worker(spec: JobSpec) -> dict:
        from repro.obs.api import current_observer

        obs = current_observer()
        assert obs is not None, "job thread must see its job's observer"
        gate.wait()  # both jobs in flight simultaneously
        obs.bus.emit(
            "job_progress", 0.0, job="", tenant="",
            stage="inside", detail=f"seed{spec.seed}",
        )
        return {"seed": spec.seed}

    srv = Server(
        ServeConfig(cache_dir=tmp_path, max_inflight=2),
        worker_fn=emitting_worker,
    ).start()
    try:
        results = {}

        def follow(seed: int) -> None:
            with ServeClient(addr(srv)) as c:
                stream = c.submit(spec_for(seed=seed), follow=True)
                details = [
                    doc["event"]["detail"]
                    for kind, doc in stream
                    if kind == "event"
                    and doc["event"]["type"] == "job_progress"
                ]
                results[seed] = details

        threads = [
            threading.Thread(target=follow, args=(s,)) for s in (101, 202)
        ]
        for t in threads:
            t.start()
        gate.wait()  # release both workers once both followers attached
        for t in threads:
            t.join(timeout=30)
        assert results == {101: ["seed101"], 202: ["seed202"]}
    finally:
        srv.close()


def test_server_wide_observer_mirrors_job_lifecycle(tmp_path):
    obs = Observability()
    seen: list[str] = []
    obs.bus.subscribe(lambda ev: seen.append(ev.type))
    with obs.as_current():
        srv = Server(
            ServeConfig(cache_dir=tmp_path), worker_fn=fake_worker
        ).start()
    try:
        with ServeClient(addr(srv)) as c:
            c.wait(c.submit(spec_for())["id"])
            c.shutdown()
        srv.serve_forever()
    finally:
        srv.close()
    assert "serve_started" in seen
    assert "job_submitted" in seen
    assert "job_finished" in seen
    assert "serve_stopped" in seen


# ----------------------------------------------------------------------
# Cancellation, timeouts, errors
# ----------------------------------------------------------------------
def test_cancel_queued_job(tmp_path):
    release = threading.Event()

    def slow_worker(spec: JobSpec) -> dict:
        release.wait(30)
        return {"seed": spec.seed}

    srv = Server(
        ServeConfig(cache_dir=tmp_path, max_inflight=1),
        worker_fn=slow_worker,
    ).start()
    try:
        with ServeClient(addr(srv)) as c:
            running = c.submit(spec_for(seed=1))
            queued = c.submit(spec_for(seed=2))
            cancelled = c.cancel(queued["id"])
            assert cancelled["state"] == "cancelled"
            # The running job cannot be preempted...
            with pytest.raises(ProtocolError) as exc:
                c.cancel(running["id"])
            assert exc.value.code == protocol.NOT_CANCELLABLE
            release.set()
            done = c.wait(running["id"])
            assert done["state"] == "done"
            # ...and a terminal job cannot be cancelled either.
            with pytest.raises(ProtocolError):
                c.cancel(done["id"])
    finally:
        release.set()
        srv.close()


def test_inline_timeout_is_enforced_post_hoc(tmp_path):
    def sleepy_worker(spec: JobSpec) -> dict:
        time.sleep(0.2)
        return {}

    srv = Server(
        ServeConfig(cache_dir=tmp_path), worker_fn=sleepy_worker
    ).start()
    try:
        with ServeClient(addr(srv)) as c:
            job = c.wait(c.submit(spec_for(), timeout=0.01)["id"])
            assert job["state"] == "timeout"
            assert "timeout" in job["error"]
    finally:
        srv.close()


def test_worker_exception_becomes_failed_state(tmp_path):
    def broken_worker(spec: JobSpec) -> dict:
        raise ValueError("deliberate")

    srv = Server(
        ServeConfig(cache_dir=tmp_path), worker_fn=broken_worker
    ).start()
    try:
        with ServeClient(addr(srv)) as c:
            job = c.wait(c.submit(spec_for())["id"])
            assert job["state"] == "failed"
            assert "deliberate" in job["error"]
            assert job["kind"] == "error"
    finally:
        srv.close()


def test_structured_errors_over_the_wire(server):
    with ServeClient(addr(server)) as c:
        with pytest.raises(ProtocolError) as exc:
            c.status("j999999")
        assert exc.value.code == protocol.UNKNOWN_JOB
        with pytest.raises(ProtocolError) as exc:
            c.submit({"workload": "hd-small"})  # no scheduler
        assert exc.value.code == protocol.BAD_REQUEST

    # Raw-socket abuse: garbage lines get structured error replies and
    # never kill the connection.
    host, port = server.tcp_address
    with socket.create_connection((host, port), timeout=10) as raw:
        fh = raw.makefile("rb")
        raw.sendall(b"this is not json\n")
        reply = json.loads(fh.readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == protocol.BAD_REQUEST
        raw.sendall(b'{"id": 5, "method": "frobnicate"}\n')
        reply = json.loads(fh.readline())
        assert reply["id"] == 5
        assert reply["error"]["code"] == protocol.UNKNOWN_METHOD
        raw.sendall(b'{"id": 6, "method": "ping"}\n')
        assert json.loads(fh.readline())["result"]["pong"] is True


# ----------------------------------------------------------------------
# jobs / metrics RPCs
# ----------------------------------------------------------------------
def test_jobs_listing_and_tenant_filter(server):
    with ServeClient(addr(server), tenant="alpha") as a, \
            ServeClient(addr(server), tenant="beta") as b:
        a.wait(a.submit(spec_for(seed=1))["id"])
        b.wait(b.submit(spec_for(seed=2))["id"])
        everything = a.jobs()
        assert everything["state"] == "serving"
        assert {j["tenant"] for j in everything["jobs"]} == {"alpha", "beta"}
        only_beta = a.jobs(tenant="beta")
        assert [j["tenant"] for j in only_beta["jobs"]] == ["beta"]


def test_metrics_rpc_exposes_prometheus_text(server):
    with ServeClient(addr(server)) as c:
        c.wait(c.submit(spec_for())["id"])
        payload = c.metrics()
    text = payload["prometheus"]
    assert "# TYPE repro_serve_queue_depth gauge" in text
    assert "repro_serve_jobs_submitted_total" in text
    assert 'state="done"' in text
    assert isinstance(payload["snapshot"], dict)


# ----------------------------------------------------------------------
# Shutdown semantics
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_before_stopping(tmp_path):
    release = threading.Event()
    started = threading.Event()

    def slow_worker(spec: JobSpec) -> dict:
        started.set()
        release.wait(30)
        return {"seed": spec.seed}

    srv = Server(
        ServeConfig(cache_dir=tmp_path, max_inflight=1),
        worker_fn=slow_worker,
    ).start()
    with ServeClient(addr(srv)) as c:
        inflight = c.submit(spec_for(seed=1))
        assert started.wait(10)
        c.shutdown(drain=True)
        # New submissions are refused while draining.
        with pytest.raises(ProtocolError) as exc:
            c.submit(spec_for(seed=2))
        assert exc.value.code == protocol.SHUTTING_DOWN
        release.set()
        srv.serve_forever()
        job = srv._jobs[inflight["id"]]
        assert job.state == "done", "drain must let in-flight work finish"
    assert srv.served == 1


def test_immediate_shutdown_cancels_queued(tmp_path):
    release = threading.Event()
    started = threading.Event()

    def slow_worker(spec: JobSpec) -> dict:
        started.set()
        release.wait(30)
        return {}

    srv = Server(
        ServeConfig(cache_dir=tmp_path, max_inflight=1),
        worker_fn=slow_worker,
    ).start()
    with ServeClient(addr(srv)) as c:
        c.submit(spec_for(seed=1))
        assert started.wait(10), "first job must hold the only slot"
        queued = c.submit(spec_for(seed=2))
        c.shutdown(drain=False)
        # Only release the in-flight job once the daemon has actually
        # swept the queue — otherwise the freed slot could legitimately
        # pick the queued job up before the sweep.
        deadline = time.monotonic() + 10
        while srv._jobs[queued["id"]].state == "queued":
            assert time.monotonic() < deadline, "queue sweep never happened"
            time.sleep(0.005)
        release.set()
        srv.serve_forever()
        assert srv._jobs[queued["id"]].state == "cancelled"
