"""Contextvar scoping of the default observer (repro.obs.api).

The default observer used to be a process global; these tests pin the
contextvar-stack semantics the serve daemon depends on: proper nesting,
out-of-order teardown, and thread isolation (one request handler's
observer never leaking into another's).
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import Observability
from repro.obs.api import current_observer, observer_stack


@pytest.fixture(autouse=True)
def _no_leaked_default():
    assert current_observer() is None
    yield
    assert current_observer() is None


def test_stack_reports_installation_order():
    a, b = Observability(), Observability()
    assert observer_stack() == ()
    a.install()
    b.install()
    assert observer_stack() == (a, b)
    assert current_observer() is b
    b.uninstall()
    a.uninstall()
    assert observer_stack() == ()


def test_out_of_order_teardown_restores_the_survivor():
    # Closing the *outer* handle first must not clobber the inner one —
    # each handle removes itself, not whatever is on top.
    outer, inner = Observability(), Observability()
    outer.install()
    inner.install()
    outer.uninstall()
    assert current_observer() is inner, (
        "inner observer must survive the outer's removal"
    )
    inner.uninstall()
    assert current_observer() is None


def test_duplicate_install_is_idempotent():
    obs = Observability()
    obs.install()
    obs.install()
    assert observer_stack() == (obs,)
    obs.uninstall()
    assert observer_stack() == ()
    obs.uninstall()  # idempotent


def test_as_current_restores_outer_across_exceptions():
    outer, inner = Observability(), Observability()
    with outer.as_current():
        with pytest.raises(RuntimeError):
            with inner.as_current():
                assert current_observer() is inner
                raise RuntimeError("boom")
        assert current_observer() is outer


def test_new_threads_start_with_an_empty_stack():
    obs = Observability()
    seen = {}

    def probe():
        seen["observer"] = current_observer()
        seen["stack"] = observer_stack()

    with obs.as_current():
        t = threading.Thread(target=probe)
        t.start()
        t.join()
    assert seen["observer"] is None
    assert seen["stack"] == ()


def test_concurrent_threads_see_only_their_own_observer():
    # The serve daemon's request handlers each install a per-job
    # observer; events from one must never reach another's bus.
    barrier = threading.Barrier(4)
    results: dict[int, list] = {}
    errors: list[BaseException] = []

    def handler(idx: int) -> None:
        try:
            obs = Observability()
            got: list = []
            obs.bus.subscribe(lambda ev: got.append(ev.fields["task"]))
            with obs.as_current():
                barrier.wait(timeout=10)  # all four installed at once
                me = current_observer()
                assert me is obs
                me.bus.emit("task_done", 0.0, task=idx, kernel="k")
                barrier.wait(timeout=10)  # all four emitted
                assert current_observer() is obs
            results[idx] = got
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)
            barrier.abort()

    threads = [threading.Thread(target=handler, args=(i,)) for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert results == {0: [0], 1: [1], 2: [2], 3: [3]}
