"""The Observability handle: default-observer installation semantics
and end-to-end artifact production through the public facade."""

from __future__ import annotations

import json

import pytest

import repro
from repro.bench import BenchConfig
from repro.obs import MetricRegistry, Observability, observe, read_events
from repro.obs.api import current_observer


@pytest.fixture(autouse=True)
def _no_leaked_default():
    assert current_observer() is None
    yield
    assert current_observer() is None


def test_context_manager_installs_and_restores_default(tmp_path):
    with observe() as obs:
        assert current_observer() is obs
        with observe() as inner:  # nesting restores the outer default
            assert current_observer() is inner
        assert current_observer() is obs
    assert current_observer() is None


def test_as_current_is_reusable_without_closing(tmp_path):
    obs = observe(events=tmp_path / "e.jsonl")
    with obs.as_current():
        obs.bus.emit("task_done", 0.0, task=1, kernel="k")
    with obs.as_current():
        obs.bus.emit("task_done", 1.0, task=2, kernel="k")
    obs.close()
    assert len(read_events(tmp_path / "e.jsonl")) == 2
    obs.close()  # idempotent


def test_observe_accepts_external_bus_and_registry():
    from repro.obs import EventBus

    bus, reg = EventBus(), MetricRegistry()
    obs = observe(bus=bus, registry=reg)
    assert obs.bus is bus and obs.metrics is reg


def test_facade_run_under_observe_produces_artifacts(tmp_path):
    events_path = tmp_path / "events.jsonl"
    prom_path = tmp_path / "metrics.prom"
    with observe(events=events_path, metrics=prom_path):
        m = repro.run("hd-small/JOSS", config=BenchConfig(scale=0.5, repetitions=1))
    assert m.total_energy > 0

    events = read_events(events_path)
    types = {ev.type for ev in events}
    assert {"run_started", "run_finished", "task_started",
            "task_finished", "dvfs_set", "config_selected"} <= types
    # Simulated timestamps are monotone within the run envelope.
    run_events = [ev for ev in events if not ev.type.startswith("sweep")]
    assert run_events[0].type == "run_started"
    assert run_events[-1].type == "run_finished"

    text = prom_path.read_text()
    assert "# TYPE" in text and "repro_" in text


def test_chrome_export_written_at_close(tmp_path):
    chrome_path = tmp_path / "trace.json"
    with observe(chrome=chrome_path):
        repro.run("hd-small/GRWS", config=BenchConfig(scale=0.5, repetitions=1))
    doc = json.loads(chrome_path.read_text())
    assert doc["traceEvents"], "chrome export must carry events"


def test_event_type_filter_narrows_the_log(tmp_path):
    path = tmp_path / "dvfs-only.jsonl"
    with observe(events=path, event_types=["dvfs_set"]):
        repro.run("hd-small/JOSS", config=BenchConfig(scale=0.5, repetitions=1))
    assert {ev.type for ev in read_events(path)} == {"dvfs_set"}


def test_observability_handle_direct_construction():
    obs = Observability()
    assert not obs.bus.active
    obs.install()
    try:
        assert current_observer() is obs
        obs.install()  # idempotent
        assert current_observer() is obs
    finally:
        obs.uninstall()
    obs.uninstall()  # idempotent
    assert current_observer() is None
