"""Metric registry: factories, label validation, the cardinality
guard and the Prometheus text rendering."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricRegistry


def test_counter_gauge_histogram_basics():
    reg = MetricRegistry()
    c = reg.counter("runs_total", "runs", labels=["scheduler"])
    c.inc(scheduler="JOSS")
    c.inc(2, scheduler="JOSS")
    assert c.value(scheduler="JOSS") == 3
    assert c.value(scheduler="GRWS") == 0

    g = reg.gauge("inflight")
    g.set(4)
    g.add(-1)
    assert g.value() == 3

    h = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count() == 3
    assert h.sum() == pytest.approx(5.55)


def test_counter_rejects_decrease():
    reg = MetricRegistry()
    with pytest.raises(ObservabilityError):
        reg.counter("n").inc(-1)


def test_factories_are_idempotent_but_reject_shape_changes():
    reg = MetricRegistry()
    a = reg.counter("x_total", labels=["k"])
    assert reg.counter("x_total", labels=["k"]) is a
    with pytest.raises(ObservabilityError):
        reg.gauge("x_total", labels=["k"])  # kind change
    with pytest.raises(ObservabilityError):
        reg.counter("x_total", labels=["other"])  # label change
    with pytest.raises(ObservabilityError):
        reg.counter("bad name")
    with pytest.raises(ObservabilityError):
        reg.counter("y_total", labels=["bad-label"])


def test_label_set_must_match_declaration():
    reg = MetricRegistry()
    c = reg.counter("x_total", labels=["scheduler"])
    with pytest.raises(ObservabilityError):
        c.inc()  # missing label
    with pytest.raises(ObservabilityError):
        c.inc(scheduler="JOSS", extra="nope")


def test_cardinality_guard_trips_at_cap():
    reg = MetricRegistry(max_series=4)
    c = reg.counter("x_total", labels=["job"])
    for i in range(4):
        c.inc(job=f"j{i}")
    with pytest.raises(ObservabilityError, match="cardinality"):
        c.inc(job="one-too-many")
    # Existing series keep working after the guard trips.
    c.inc(job="j0")
    assert c.value(job="j0") == 2


def test_render_prometheus_format():
    reg = MetricRegistry()
    c = reg.counter("runs_total", "Completed runs.", labels=["scheduler"])
    c.inc(scheduler="JOSS")
    h = reg.histogram("dur_seconds", "Run durations.", buckets=(1.0,))
    h.observe(0.5)
    h.observe(2.0)
    text = reg.render_prometheus()
    assert text.endswith("\n")
    lines = text.splitlines()
    assert "# HELP dur_seconds Run durations." in lines
    assert "# TYPE dur_seconds histogram" in lines
    assert 'dur_seconds_bucket{le="1"} 1' in lines
    assert 'dur_seconds_bucket{le="+Inf"} 2' in lines
    assert "dur_seconds_sum 2.5" in lines
    assert "dur_seconds_count 2" in lines
    assert "# TYPE runs_total counter" in lines
    assert 'runs_total{scheduler="JOSS"} 1' in lines
    # Blocks are name-sorted: dur_seconds before runs_total.
    assert lines.index("# TYPE dur_seconds histogram") < lines.index(
        "# TYPE runs_total counter"
    )


def test_label_values_are_escaped():
    reg = MetricRegistry()
    g = reg.gauge("x", labels=["v"])
    g.set(1, v='quo"te\nnl\\bs')
    assert 'v="quo\\"te\\nnl\\\\bs"' in reg.render_prometheus()


def test_snapshot_is_json_safe():
    import json

    reg = MetricRegistry()
    reg.counter("a_total", labels=["k"]).inc(k="x")
    reg.histogram("b_seconds", buckets=(1.0,)).observe(0.2)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["a_total"]["kind"] == "counter"
    assert snap["a_total"]["series"] == {"k=x": 1}


def test_write_snapshot_to_file(tmp_path):
    reg = MetricRegistry()
    reg.counter("a_total").inc()
    out = reg.write(tmp_path / "m.prom")
    assert out.read_text() == "# TYPE a_total counter\na_total 1\n"
