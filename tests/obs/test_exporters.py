"""Exporters are bus subscribers: JSONL round-trip, the legacy-tracer
bridge, Chrome-trace byte-equivalence and the sweep progress line."""

from __future__ import annotations

import json

from repro.obs import EventBus, JsonlEventLog, read_events
from repro.obs.exporters import (
    LEGACY_CATEGORIES,
    ChromeTraceExporter,
    bridge_tracer,
    sweep_progress_line,
)
from repro.sim.trace import Tracer, render_chrome_trace


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    bus = EventBus()
    log = JsonlEventLog(path, bus)
    bus.emit("run_started", 0.0, workload="fb", scheduler="JOSS",
             platform="jetson-tx2", tasks=3, seed=11)
    bus.emit("dvfs_set", 0.25, domain="denver", freq=2.035e9)
    bus.emit("task_done", 1.5, task=2, kernel="fb.k0")
    log.close()
    assert log.events_written == 3

    events = read_events(path)
    assert [ev.type for ev in events] == ["run_started", "dvfs_set", "task_done"]
    assert events[0].fields["workload"] == "fb"
    assert events[1].time == 0.25
    assert events[2].fields == {"task": 2, "kernel": "fb.k0"}
    # Each line is independently parseable (crash leaves a valid prefix).
    for line in path.read_text().splitlines():
        obj = json.loads(line)
        assert {"type", "time"} <= obj.keys()


def test_jsonl_log_respects_type_filter(tmp_path):
    bus = EventBus()
    log = JsonlEventLog(tmp_path / "e.jsonl", bus, types=["task_done"])
    bus.emit("task_started", 0.0, kernel="k", core=0)
    bus.emit("task_done", 1.0, task=1, kernel="k")
    log.close()
    events = read_events(tmp_path / "e.jsonl")
    assert [ev.type for ev in events] == ["task_done"]
    # Closing detached the subscription: the bus is silent again.
    assert not bus.active


def test_bridge_forwards_only_legacy_categories():
    bus = EventBus()
    tracer = Tracer()
    sub = bridge_tracer(bus, tracer)
    bus.emit("task_started", 0.1, kernel="k", core=3)
    bus.emit("config_selected", 0.2, kernel="k", cluster="denver",
             n_cores=2, f_c=2.0e9, f_m=1.6e9, evaluations=7)  # no legacy twin
    bus.emit("dvfs_set", 0.3, domain="mem", freq=1.6e9)
    records = list(tracer)
    assert [(r.category, r.time) for r in records] == [
        ("activity-start", 0.1), ("freq-change", 0.3),
    ]
    assert records[0].payload == {"kernel": "k", "core": 3}
    sub.close()
    bus.emit("task_started", 0.4, kernel="k", core=0)
    assert len(tracer) == 2


def _run_hd_small(tracer=None, obs=None):
    from repro.hw.platform import jetson_tx2
    from repro.runtime.executor import Executor
    from repro.schedulers import make_scheduler
    from repro.workloads.registry import build_workload

    graph = build_workload("hd-small", scale=0.5, seed=7)
    sched = make_scheduler("GRWS", None)
    ex = Executor(jetson_tx2(), sched, seed=11, tracer=tracer, obs=obs)
    return ex.run(graph)


def test_chrome_trace_via_bus_is_byte_identical_to_legacy_tracer(tmp_path):
    # Legacy side: a Tracer handed to the Executor (internally bridged,
    # the pre-bus API), rendered through render_chrome_trace.
    tracer = Tracer()
    m_legacy = _run_hd_small(tracer=tracer)
    legacy_json = json.dumps(render_chrome_trace(list(tracer)))

    # Bus side: the same run observed by a ChromeTraceExporter.
    bus = EventBus()
    exporter = ChromeTraceExporter(bus)
    m_bus = _run_hd_small(obs=bus)
    out = exporter.save(tmp_path / "trace.json")
    exporter.close()

    assert m_bus.total_energy == m_legacy.total_energy  # identical runs
    assert out.read_text() == legacy_json  # identical bytes


def test_chrome_exporter_category_narrowing():
    bus = EventBus()
    exporter = ChromeTraceExporter(bus, categories=["freq-change"])
    bus.emit("task_started", 0.0, kernel="k", core=0)
    bus.emit("dvfs_set", 1.0, domain="denver", freq=2.0e9)
    assert [r.category for r in exporter.records] == ["freq-change"]


def test_sweep_progress_line_renders_transitions():
    bus = EventBus()
    lines = []
    sweep_progress_line(bus, write=lines.append)
    bus.emit("sweep_started", 0.0, jobs=2, workers=1)
    job = dict(job="abc123", workload="fb", scheduler="JOSS", scale=1.0,
               repetition=0)
    bus.emit("sweep_job_started", 0.1, **job)
    bus.emit("sweep_job_done", 0.2, **job)
    bus.emit("sweep_job_cache_hit", 0.3, **{**job, "repetition": 1})
    bus.emit("sweep_finished", 0.4, jobs=2, executed=1, cache_hits=1,
             failed=0, retries=0, wall_seconds=0.4, wall_time=0.4)
    assert lines == [
        "[0/2] start     fb/JOSS",
        "[1/2] done      fb/JOSS",
        "[2/2] cache-hit fb/JOSS",
        "sweep done: 1 executed, 1 cache hits, 0 failed in 0.40 s",
    ]


def test_legacy_category_map_is_total_over_tracer_categories():
    # Every bus type in the map must be registered, and the mapped
    # categories must be exactly the nine the legacy tooling knows.
    from repro.obs.events import EVENT_TYPES

    assert set(LEGACY_CATEGORIES) <= set(EVENT_TYPES)
    assert set(LEGACY_CATEGORIES.values()) == {
        "activity-start", "activity-end", "freq-change", "dispatch",
        "task-done", "degraded-enter", "degraded-exit", "core-unplug",
        "core-replug",
    }
