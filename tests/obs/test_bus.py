"""Event bus contract: ordering, re-entrant unsubscription, the
``active`` flag, taxonomy validation and the zero-cost silent path."""

from __future__ import annotations

import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import Event, EventBus


def test_subscribers_called_in_subscription_order():
    bus = EventBus()
    calls = []
    bus.subscribe(lambda ev: calls.append(("a", ev.type)))
    bus.subscribe(lambda ev: calls.append(("b", ev.type)))
    bus.subscribe(lambda ev: calls.append(("c", ev.type)))
    bus.emit("task_started", 1.0, kernel="k", core=0)
    assert calls == [("a", "task_started"), ("b", "task_started"),
                     ("c", "task_started")]


def test_active_flag_tracks_subscriptions():
    bus = EventBus()
    assert not bus.active
    s1 = bus.subscribe(lambda ev: None)
    s2 = bus.subscribe(lambda ev: None)
    assert bus.active and bus.subscriber_count == 2
    s1.close()
    assert bus.active
    s2.close()
    assert not bus.active and bus.subscriber_count == 0
    s2.close()  # idempotent
    assert not bus.active


def test_unsubscribe_during_dispatch_does_not_skip_or_double_deliver():
    bus = EventBus()
    calls = []
    subs = {}

    def a(ev):
        calls.append("a")
        subs["b"].close()  # removes b mid-dispatch

    subs["a"] = bus.subscribe(a)
    subs["b"] = bus.subscribe(lambda ev: calls.append("b"))
    subs["c"] = bus.subscribe(lambda ev: calls.append("c"))
    # Dispatch snapshots the subscriber list: b still sees THIS event.
    bus.emit("task_done", 2.0, task=1, kernel="k")
    assert calls == ["a", "b", "c"]
    calls.clear()
    bus.emit("task_done", 3.0, task=2, kernel="k")
    assert calls == ["a", "c"]


def test_type_filtered_subscription():
    bus = EventBus()
    seen = []
    bus.subscribe(seen.append, types=["dvfs_set"])
    bus.emit("task_started", 0.0, kernel="k", core=0)
    bus.emit("dvfs_set", 1.0, domain="denver", freq=2.0e9)
    assert [ev.type for ev in seen] == ["dvfs_set"]


def test_unknown_event_type_rejected_at_subscribe_and_emit():
    bus = EventBus()
    with pytest.raises(ObservabilityError):
        bus.subscribe(lambda ev: None, types=["no_such_event"])
    bus.subscribe(lambda ev: None)
    with pytest.raises(ObservabilityError):
        bus.emit("no_such_event", 0.0)


def test_reserved_field_names_rejected():
    bus = EventBus()
    bus.subscribe(lambda ev: None)
    # Via kwargs the reserved names collide with emit's own parameters
    # (TypeError); a dict-splatted payload hits the explicit guard.
    with pytest.raises((ObservabilityError, TypeError)):
        bus.emit("task_done", 0.0, **{"type": "oops"})
    with pytest.raises((ObservabilityError, TypeError)):
        bus.emit("task_done", 0.0, **{"time": 1.0})


def test_silent_emit_is_safe_and_uncounted():
    bus = EventBus()
    bus.emit("task_started", 0.0, kernel="k", core=0)
    # Even an invalid emit is silently dropped before validation: the
    # silent path must do no work at all.
    bus.emit("no_such_event", 0.0)
    assert bus.events_emitted == 0


def test_publish_redelivers_prebuilt_event():
    bus_a, bus_b = EventBus(), EventBus()
    relayed = []
    bus_b.subscribe(relayed.append)
    bus_a.subscribe(bus_b.publish)  # bus-to-bus relay
    bus_a.emit("run_started", 0.0, workload="fb", scheduler="JOSS",
               platform="jetson-tx2", tasks=3, seed=11)
    assert len(relayed) == 1
    assert isinstance(relayed[0], Event)
    assert relayed[0].fields["workload"] == "fb"


def test_no_subscriber_overhead_microbenchmark():
    """The guarded silent path must be within an order of magnitude of
    a bare attribute-check loop — i.e. no dict build, no Event alloc.
    Generous bound (10x) so CI runner noise cannot flake it; the real
    gate is the ``obs_overhead`` perf benchmark."""
    bus = EventBus()
    n = 50_000

    def guarded_loop() -> float:
        t0 = time.perf_counter()
        for i in range(n):
            if bus.active:
                bus.emit("task_started", float(i), kernel="k", core=0)
        return time.perf_counter() - t0

    def bare_loop() -> float:
        flag = False
        acc = 0
        t0 = time.perf_counter()
        for i in range(n):
            if flag:
                acc += i
        return time.perf_counter() - t0

    guarded = min(guarded_loop() for _ in range(3))
    bare = min(bare_loop() for _ in range(3))
    assert guarded < bare * 10 + 1e-3
    assert bus.events_emitted == 0
