"""ChaosAction / ChaosCampaign: validation, determinism, hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    ALL_KINDS,
    ChaosAction,
    ChaosCampaign,
    default_campaign,
)
from repro.errors import ChaosError


def test_unknown_kind_rejected():
    with pytest.raises(ChaosError):
        ChaosAction("set-on-fire", at=1.0)


def test_negative_offset_rejected():
    with pytest.raises(ChaosError):
        ChaosAction("kill-worker", at=-0.1)


def test_action_round_trips_through_dict():
    a = ChaosAction("corrupt-journal", at=2.5, magnitude=64,
                    params={"note": "x"})
    b = ChaosAction.from_dict(a.to_dict())
    assert a == b
    assert b.params_dict() == {"note": "x"}


def test_action_label():
    assert ChaosAction("kill-daemon", at=1.5).label() == "kill-daemon[t+1.5s]"
    assert (ChaosAction("sever-client", at=0, target="t0").label()
            == "sever-client@t0[t+0s]")


def test_campaign_rejects_non_actions():
    with pytest.raises(ChaosError):
        ChaosCampaign(actions=("kill-worker",))


def test_campaign_hash_is_content_addressed():
    c1 = ChaosCampaign(seed=1, actions=(ChaosAction("kill-worker", at=1),))
    c2 = ChaosCampaign(seed=1, actions=(ChaosAction("kill-worker", at=1),))
    c3 = ChaosCampaign(seed=2, actions=(ChaosAction("kill-worker", at=1),))
    c4 = ChaosCampaign(seed=1, actions=(ChaosAction("kill-worker", at=2),))
    assert c1.campaign_hash == c2.campaign_hash
    assert len({c1.campaign_hash, c3.campaign_hash, c4.campaign_hash}) == 3


def test_rng_streams_deterministic_and_independent():
    c = ChaosCampaign(seed=42, actions=(
        ChaosAction("kill-worker", at=1), ChaosAction("kill-daemon", at=2),
    ))
    a0 = c.rng_for(0).integers(0, 1_000_000, size=4)
    a0_again = c.rng_for(0).integers(0, 1_000_000, size=4)
    a1 = c.rng_for(1).integers(0, 1_000_000, size=4)
    assert np.array_equal(a0, a0_again)
    assert not np.array_equal(a0, a1)


def test_timeline_sorts_by_offset_keeping_indices():
    late = ChaosAction("kill-daemon", at=5)
    early = ChaosAction("kill-worker", at=1)
    c = ChaosCampaign(actions=(late, early))
    assert c.timeline() == [(1, early), (0, late)]


def test_campaign_round_trips_through_dict():
    c = default_campaign(seed=9, span_s=10.0)
    again = ChaosCampaign.from_dict(c.to_dict())
    assert again == c
    assert again.campaign_hash == c.campaign_hash


def test_default_campaign_covers_crash_and_corruption():
    c = default_campaign()
    kinds = {a.kind for a in c.actions}
    assert {"kill-worker", "kill-daemon",
            "corrupt-cache", "corrupt-journal"} <= kinds
    assert all(a.kind in ALL_KINDS for a in c.actions)
    # Offsets scale with the span.
    wide = default_campaign(span_s=12.0)
    assert max(a.at for a in wide.actions) == pytest.approx(
        2 * max(a.at for a in c.actions)
    )
