"""End-to-end chaos acceptance: a seeded campaign against a real
daemon subprocess must hold every durability invariant.

This is the PR's acceptance gate: the daemon is SIGKILLed mid-flight
with >= 8 jobs across 3 tenants queued behind a throttled scheduler,
its journal tail is torn, a worker is killed and a cache entry
corrupted — and still: zero lost acknowledged jobs, zero duplicated
executions, results bit-identical to local execution, and a compacted
journal after the final clean drain.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.chaos import ChaosAction, ChaosCampaign, run_campaign
from repro.errors import ChaosError

REPO_SRC = Path(repro.__file__).resolve().parents[1]


def test_run_campaign_rejects_degenerate_workloads(tmp_path):
    with pytest.raises(ChaosError):
        run_campaign(ChaosCampaign(), tmp_path, jobs=0)


@pytest.mark.slow
def test_acceptance_daemon_sigkill_mid_flight(tmp_path):
    campaign = ChaosCampaign(seed=2026, name="acceptance", actions=(
        ChaosAction("kill-worker", at=0.5),
        ChaosAction("corrupt-cache", at=0.8),
        # With the scheduler throttled to ~1 dispatch per 0.35 s, at
        # t=1.1 most of the 8 jobs are still queued: the SIGKILL lands
        # mid-flight and recovery has real work to re-enqueue.
        ChaosAction("kill-daemon", at=1.1),
        ChaosAction("corrupt-journal", at=2.6, magnitude=41),
        ChaosAction("sever-client", at=3.2),
    ))
    report = run_campaign(
        campaign, tmp_path / "campaign",
        jobs=8, tenants=3, workers=2, scale=0.25,
        sched_delay=0.35, drain_timeout=120.0, repo_src=REPO_SRC,
    )
    assert report.violations == []
    assert report.ok
    assert report.completed == 8
    assert report.duplicate_finishes == 0
    # The SIGKILL landed mid-flight: the restarted daemon had journaled,
    # unfinished work to re-enqueue.
    assert report.incarnations >= 3  # initial + kill-daemon + corrupt-journal
    assert report.recovered_jobs > 0
    # The report is JSON-serialisable for CI artifacts.
    blob = json.dumps(report.to_dict())
    assert json.loads(blob)["ok"] is True


@pytest.mark.slow
def test_campaign_with_scheduler_delay_action(tmp_path):
    """delay-sched applies to incarnations started after the action."""
    campaign = ChaosCampaign(seed=5, name="delay", actions=(
        ChaosAction("delay-sched", at=0.2, magnitude=0.05),
        ChaosAction("kill-daemon", at=0.6),
    ))
    report = run_campaign(
        campaign, tmp_path / "campaign",
        jobs=4, tenants=2, workers=2, scale=0.25,
        sched_delay=0.1, drain_timeout=120.0, repo_src=REPO_SRC,
    )
    assert report.ok, report.violations
    assert report.completed == 4
    assert report.incarnations == 2
