"""Tests for seeded RNG streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngStreams


def test_same_name_same_generator_object():
    rng = RngStreams(7)
    assert rng.stream("a") is rng.stream("a")


def test_reproducible_across_instances():
    a = RngStreams(7).stream("noise").random(5)
    b = RngStreams(7).stream("noise").random(5)
    assert np.array_equal(a, b)


def test_streams_independent():
    rng = RngStreams(7)
    a = rng.stream("a").random(100)
    b = rng.stream("b").random(100)
    assert not np.array_equal(a, b)


def test_draw_order_isolation():
    """Drawing from one stream must not shift another stream's draws."""
    r1 = RngStreams(7)
    r1.stream("a").random(50)  # consume
    got = r1.stream("b").random(5)
    r2 = RngStreams(7)
    expected = r2.stream("b").random(5)
    assert np.array_equal(got, expected)


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(10)
    b = RngStreams(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_fork_is_deterministic_and_distinct():
    base = RngStreams(5)
    f1 = base.fork(3)
    f2 = RngStreams(5).fork(3)
    assert f1.seed == f2.seed
    assert f1.seed != base.seed
    assert np.array_equal(f1.stream("s").random(4), f2.stream("s").random(4))
