"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_priority_then_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "second", priority=0)
    sim.schedule(1.0, order.append, "first", priority=-1)
    sim.schedule(1.0, order.append, "third", priority=0)
    sim.run()
    assert order == ["first", "second", "third"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_zero_delay_event_runs_after_current_callback():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.0, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 1.0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_pending_count_excludes_tombstones():
    sim = Simulator()
    ev1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev1.cancel()
    assert sim.pending_count() == 1


def test_pending_count_tombstone_heavy():
    """The live-event counter must stay exact when the heap is
    dominated by tombstones (the execution engine's cancel/reschedule
    pattern) — including double cancels and cancels of fired events."""
    sim = Simulator()
    keep = [sim.schedule(100.0 + i, lambda: None) for i in range(10)]
    for _ in range(50):
        evs = [sim.schedule(1.0 + i * 0.01, lambda: None) for i in range(20)]
        for ev in evs:
            ev.cancel()
            ev.cancel()  # idempotent: one decrement only
    assert sim.pending_count() == 10
    fired = sim.schedule(0.5, lambda: None)
    sim.run(until=0.5)
    assert sim.pending_count() == 10
    fired.cancel()  # cancelling an already-fired event is a no-op
    assert sim.pending_count() == 10
    keep[0].cancel()
    assert sim.pending_count() == 9
    sim.run()
    assert sim.pending_count() == 0
    assert sim.events_fired == 1 + 9


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_not_reentrant():
    sim = Simulator()

    def bad():
        sim.run()

    sim.schedule(1.0, bad)
    with pytest.raises(SimulationError):
        sim.run()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_clock_monotone_and_order_sorted(delays):
    """Whatever the schedule, callbacks fire in non-decreasing time."""
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert len(times) == len(delays)
    assert times == sorted(times)
    assert sim.now == max(delays)


# ----------------------------------------------------------------------
# Indexed calendar: cancel-then-step, reschedule, compaction
# ----------------------------------------------------------------------
def test_cancel_then_step_skips_tombstone():
    """``step()`` (through the shared ``_pop_live`` helper) must fire
    the next *live* event, not stop on a tombstone at the heap head."""
    sim = Simulator()
    fired = []
    head = sim.schedule(1.0, fired.append, "dead")
    sim.schedule(2.0, fired.append, "alive")
    head.cancel()
    assert sim.step() is True  # one live event fired, tombstone skipped
    assert fired == ["alive"]
    assert sim.now == 2.0
    assert sim.step() is False  # calendar drained


def test_cancel_all_then_step_returns_false():
    sim = Simulator()
    evs = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
    for ev in evs:
        ev.cancel()
    assert sim.step() is False
    assert sim.events_fired == 0


def test_reschedule_moves_event_both_directions():
    """Reschedule is the calendar's decrease-key: the same handle moves
    earlier or later and fires exactly once at its final time."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.reschedule(ev, 1.0)  # earlier
    sim.run()
    assert fired == [1.0]

    sim2 = Simulator()
    fired2 = []
    ev2 = sim2.schedule(1.0, lambda: fired2.append(sim2.now))
    sim2.reschedule(ev2, 7.0)  # later
    sim2.schedule(2.0, lambda: fired2.append(sim2.now))
    sim2.run()
    assert fired2 == [2.0, 7.0]


def test_reschedule_keeps_live_count_exact():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    for i in range(10):
        sim.reschedule(ev, 1.0 + 0.1 * i)
    assert sim.pending_count() == 1  # one handle == one pending callback
    sim.run()
    assert sim.events_fired == 1


def test_reschedule_cancelled_or_fired_rejected():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    with pytest.raises(SimulationError):
        sim.reschedule(ev, 2.0)
    fired_ev = sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.reschedule(fired_ev, 2.0)
    with pytest.raises(SimulationError):
        sim.reschedule(sim.schedule(1.0, lambda: None), -0.5)


def test_reschedule_priority_applies_at_new_key():
    sim = Simulator()
    order = []
    ev = sim.schedule(5.0, order.append, "moved")
    sim.schedule(1.0, order.append, "later", priority=0)
    sim.reschedule(ev, 1.0, priority=-1)  # same time, higher priority
    sim.run()
    assert order == ["moved", "later"]


def test_compaction_sweeps_dead_entries():
    """When tombstones dominate, the calendar rebuilds in place; the
    live set and firing order are unaffected."""
    sim = Simulator()
    fired = []
    keep = [sim.schedule(100.0 + i, fired.append, i) for i in range(4)]
    # Dead entries well past the compaction threshold.
    for _ in range(3):
        evs = [sim.schedule(1.0, lambda: None) for _ in range(300)]
        for ev in evs:
            ev.cancel()
    assert sim.compactions >= 1
    assert sim.pending_count() == len(keep)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_reschedule_churn_triggers_compaction():
    """A reschedule-heavy workload (the engine's deadline maintenance)
    leaves superseded entries behind; compaction must reclaim them
    without losing the handle."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(10.0, lambda: fired.append(sim.now))
    for i in range(2000):
        sim.reschedule(ev, 10.0 + (i % 7) * 0.5)
    assert sim.compactions >= 1
    assert sim.pending_count() == 1
    sim.run()
    assert len(fired) == 1
