"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_priority_then_insertion_order():
    sim = Simulator()
    order = []
    sim.schedule(1.0, order.append, "second", priority=0)
    sim.schedule(1.0, order.append, "first", priority=-1)
    sim.schedule(1.0, order.append, "third", priority=0)
    sim.run()
    assert order == ["first", "second", "third"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "x")
    ev.cancel()
    sim.run()
    assert fired == []
    assert sim.events_fired == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    ev = sim.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    sim.run()


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.5, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_zero_delay_event_runs_after_current_callback():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.0, order.append, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 1.0


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 10]


def test_run_max_events():
    sim = Simulator()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_pending_count_excludes_tombstones():
    sim = Simulator()
    ev1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    ev1.cancel()
    assert sim.pending_count() == 1


def test_pending_count_tombstone_heavy():
    """The live-event counter must stay exact when the heap is
    dominated by tombstones (the execution engine's cancel/reschedule
    pattern) — including double cancels and cancels of fired events."""
    sim = Simulator()
    keep = [sim.schedule(100.0 + i, lambda: None) for i in range(10)]
    for _ in range(50):
        evs = [sim.schedule(1.0 + i * 0.01, lambda: None) for i in range(20)]
        for ev in evs:
            ev.cancel()
            ev.cancel()  # idempotent: one decrement only
    assert sim.pending_count() == 10
    fired = sim.schedule(0.5, lambda: None)
    sim.run(until=0.5)
    assert sim.pending_count() == 10
    fired.cancel()  # cancelling an already-fired event is a no-op
    assert sim.pending_count() == 10
    keep[0].cancel()
    assert sim.pending_count() == 9
    sim.run()
    assert sim.pending_count() == 0
    assert sim.events_fired == 1 + 9


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_not_reentrant():
    sim = Simulator()

    def bad():
        sim.run()

    sim.schedule(1.0, bad)
    with pytest.raises(SimulationError):
        sim.run()


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_clock_monotone_and_order_sorted(delays):
    """Whatever the schedule, callbacks fire in non-decreasing time."""
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert len(times) == len(delays)
    assert times == sorted(times)
    assert sim.now == max(delays)
