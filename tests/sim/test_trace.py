"""Tests for the tracer."""

from __future__ import annotations

from repro.sim.trace import Tracer


def test_emit_and_filter():
    t = Tracer()
    t.emit(0.0, "a", x=1)
    t.emit(1.0, "b", y=2)
    t.emit(2.0, "a", x=3)
    assert len(t) == 3
    assert [r.payload["x"] for r in t.records("a")] == [1, 3]


def test_disabled_tracer_records_nothing():
    t = Tracer(enabled=False)
    t.emit(0.0, "a")
    assert len(t) == 0


def test_category_whitelist():
    t = Tracer(categories=["keep"])
    t.emit(0.0, "keep")
    t.emit(0.0, "drop")
    assert len(t) == 1
    assert t.records()[0].category == "keep"


def test_clear():
    t = Tracer()
    t.emit(0.0, "a")
    t.clear()
    assert len(t) == 0
