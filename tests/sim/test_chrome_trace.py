"""Chrome trace-event export from the tracer."""

from __future__ import annotations

import json

from repro.sim.trace import Tracer


def _traced() -> Tracer:
    tr = Tracer()
    tr.emit(0.0, "activity-start", kernel="mm.block", core=0)
    tr.emit(0.010, "activity-end", kernel="mm.block", core=0, elapsed=0.010)
    tr.emit(0.002, "freq-change", domain="cpu0", freq=1.11)
    tr.emit(0.004, "dispatch", task=7, core=1)
    return tr


def test_activity_pairs_become_complete_events():
    trace = _traced().to_chrome_trace()
    events = trace["traceEvents"]
    x = [e for e in events if e["ph"] == "X"]
    assert len(x) == 1
    assert x[0]["name"] == "mm.block"
    assert x[0]["tid"] == 0
    assert x[0]["ts"] == 0.0
    assert abs(x[0]["dur"] - 10_000.0) < 1e-6  # seconds -> microseconds


def test_freq_changes_become_counters():
    events = _traced().to_chrome_trace()["traceEvents"]
    c = [e for e in events if e["ph"] == "C"]
    assert c and c[0]["args"] == {"GHz": 1.11}
    assert "cpu0" in c[0]["name"]


def test_other_categories_become_instants():
    events = _traced().to_chrome_trace()["traceEvents"]
    inst = [e for e in events if e["ph"] == "i"]
    assert inst and inst[0]["name"] == "dispatch"
    assert inst[0]["args"] == {"task": 7, "core": 1}


def test_unmatched_start_is_skipped_and_file_is_valid_json(tmp_path):
    tr = Tracer()
    tr.emit(0.0, "activity-start", kernel="k", core=0)  # never ends
    path = tr.save_chrome_trace(tmp_path / "t.json")
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    assert not [e for e in data["traceEvents"] if e["ph"] == "X"]


def test_real_run_produces_openable_trace(tmp_path):
    from repro.hw import jetson_tx2
    from repro.runtime.executor import Executor
    from repro.schedulers.registry import make_scheduler
    from repro.workloads.registry import build_workload

    tracer = Tracer(categories=["activity-start", "activity-end", "freq-change"])
    ex = Executor(jetson_tx2(), make_scheduler("GRWS", None), seed=1, tracer=tracer)
    ex.run(build_workload("fb", scale=1.0))
    trace = tracer.to_chrome_trace()
    x = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert len(x) > 10
    assert all(e["dur"] >= 0 for e in x)
    # Track metadata names each core's lane.
    names = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert any(e["args"].get("name") == "core 0" for e in names)
