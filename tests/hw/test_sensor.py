"""Tests for energy accounting and the sampled power sensor."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.hw.sensor import EnergyAccountant, PowerSensor
from repro.sim import Simulator
from repro.sim.rng import RngStreams


class TestEnergyAccountant:
    def test_piecewise_integration(self):
        acc = EnergyAccountant()
        acc.update(0.0, {"cpu": 2.0, "mem": 1.0})
        acc.update(1.0, {"cpu": 4.0})
        acc.update(3.0, {})
        assert acc.energy("cpu") == pytest.approx(2.0 * 1.0 + 4.0 * 2.0)
        assert acc.energy("mem") == pytest.approx(1.0 * 3.0)
        assert acc.total_energy() == pytest.approx(13.0)

    def test_finalize_integrates_tail(self):
        acc = EnergyAccountant()
        acc.update(0.0, {"cpu": 5.0})
        acc.finalize(2.0)
        assert acc.energy("cpu") == pytest.approx(10.0)

    def test_time_backwards_rejected(self):
        acc = EnergyAccountant()
        acc.update(1.0, {"cpu": 1.0})
        with pytest.raises(SimulationError):
            acc.update(0.5, {"cpu": 1.0})

    def test_unknown_rail_rejected(self):
        with pytest.raises(SimulationError):
            EnergyAccountant().update(0.0, {"gpu": 1.0})

    def test_power_query(self):
        acc = EnergyAccountant()
        acc.update(0.0, {"cpu": 3.0})
        assert acc.power("cpu") == 3.0


class TestPowerSensor:
    def test_noiseless_sensor_matches_constant_power(self):
        sim = Simulator()
        sensor = PowerSensor(
            sim, lambda: {"cpu": 2.0, "mem": 0.5}, interval_s=0.005, noise_sigma=0.0
        )
        sensor.start()
        sim.run(until=1.0)
        sensor.stop()
        # 200 samples x 2 W x 5 ms = 2 J
        assert sensor.energy("cpu") == pytest.approx(2.0, rel=0.01)
        assert sensor.energy("mem") == pytest.approx(0.5, rel=0.01)
        assert sensor.samples in (199, 200)  # fp accumulation of 0.005 steps

    def test_noisy_sensor_close_to_truth(self):
        sim = Simulator()
        rng = RngStreams(3).stream("sensor")
        sensor = PowerSensor(
            sim, lambda: {"cpu": 2.0}, interval_s=0.005, noise_sigma=0.05, rng=rng
        )
        sensor.start()
        sim.run(until=5.0)
        sensor.stop()
        assert sensor.energy("cpu") == pytest.approx(10.0, rel=0.02)

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            PowerSensor(sim, lambda: {}, interval_s=0.0)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sensor = PowerSensor(sim, lambda: {"cpu": 1.0}, noise_sigma=0.0)
        sensor.start()
        sim.run(until=0.02)
        sensor.stop()
        sim.run()
        assert sensor.samples <= 5

    def test_start_idempotent(self):
        sim = Simulator()
        sensor = PowerSensor(sim, lambda: {"cpu": 1.0}, noise_sigma=0.0)
        sensor.start()
        sensor.start()
        sim.run(until=0.0201)
        assert sensor.samples == 4

    def test_stop_restart_does_not_double_chain(self):
        """Regression: stop() used to leave the pending _sample event
        alive; a restart then ran two interleaved sampling chains and
        double-counted energy."""
        sim = Simulator()
        sensor = PowerSensor(
            sim, lambda: {"cpu": 2.0}, interval_s=0.005, noise_sigma=0.0
        )
        sensor.start()
        sim.run(until=0.0101)  # a few samples in, one pending
        sensor.stop()
        sensor.start()
        sim.run(until=1.0)
        sensor.stop()
        # One chain's worth of samples: ~200 over 1 s at 5 ms, not ~400.
        assert sensor.samples <= 201
        assert sensor.energy("cpu") == pytest.approx(2.0, rel=0.02)

    def test_finalize_accounts_partial_tail(self):
        sim = Simulator()
        sensor = PowerSensor(
            sim, lambda: {"cpu": 2.0}, interval_s=0.005, noise_sigma=0.0
        )
        sensor.start()
        sim.run(until=0.0125)  # 2 full samples + a 2.5 ms tail
        sensor.finalize(sim.now)
        assert sensor.energy("cpu") == pytest.approx(2.0 * 0.0125)
        sim.run()
        assert sensor.energy("cpu") == pytest.approx(2.0 * 0.0125)  # stopped

    def test_finalize_when_stopped_is_noop(self):
        sim = Simulator()
        sensor = PowerSensor(sim, lambda: {"cpu": 2.0}, noise_sigma=0.0)
        sensor.finalize(1.0)
        assert sensor.energy("cpu") == 0.0

    def test_none_reading_counts_as_dropped_sample(self):
        sim = Simulator()
        readings = iter([{"cpu": 2.0}, None, {"cpu": 2.0}, None])
        sensor = PowerSensor(
            sim, lambda: next(readings), interval_s=0.005, noise_sigma=0.0
        )
        sensor.start()
        sim.run(until=0.0201)
        assert sensor.samples == 2
        assert sensor.dropped == 2
        # Dropped intervals accumulate no energy.
        assert sensor.energy("cpu") == pytest.approx(2.0 * 0.005 * 2)

    def test_last_sample_time_tracks_successes_only(self):
        sim = Simulator()
        readings = iter([{"cpu": 1.0}] + [None] * 100)
        sensor = PowerSensor(
            sim, lambda: next(readings), interval_s=0.005, noise_sigma=0.0
        )
        sensor.start()
        sim.run(until=0.1)
        assert sensor.last_sample_time == pytest.approx(0.005)
