"""Tests for the per-core-DVFS platform variant and type equivalence."""

from __future__ import annotations

import pytest

from repro.hw import jetson_tx2
from repro.hw.platform import jetson_tx2_per_core


@pytest.fixture
def percore():
    return jetson_tx2_per_core()


class TestTopology:
    def test_six_single_core_clusters(self, percore):
        assert len(percore.clusters) == 6
        assert all(cl.n_cores == 1 for cl in percore.clusters)
        assert percore.n_cores == 6

    def test_type_names_shared(self, percore):
        assert percore.core_type_names() == ["denver", "a57"]
        assert len(percore.clusters_of_type("denver")) == 2
        assert len(percore.clusters_of_type("a57")) == 4

    def test_cores_of_type(self, percore):
        assert len(percore.cores_of_type("denver")) == 2
        assert len(percore.cores_of_type("a57")) == 4

    def test_resource_configs_deduplicated(self, percore):
        # One (type, nc=1) entry per type, not one per cluster.
        configs = [(cl.core_type.name, nc) for cl, nc in percore.resource_configs()]
        assert configs == [("denver", 1), ("a57", 1)]

    def test_clustered_platform_unchanged(self, tx2):
        assert len(tx2.resource_configs()) == 5
        assert len(tx2.clusters_of_type("a57")) == 1


class TestIndependentFrequencies:
    def test_cores_tune_independently(self, percore):
        a, b = percore.clusters_of_type("a57")[:2]
        a.set_freq(0.345)
        assert b.freq == b.opps.max


class TestSchedulingOnPerCore:
    def test_joss_runs_and_spreads_tasks(self):
        from repro.core import JossScheduler
        from repro.models import profile_and_fit
        from repro.runtime import Executor
        from repro.workloads import build_workload

        suite = profile_and_fit(jetson_tx2_per_core, seed=0)
        assert set(suite.config_keys()) == {("denver", 1), ("a57", 1)}
        ex = Executor(jetson_tx2_per_core(), JossScheduler(suite), seed=5)
        m = ex.run(build_workload("mm-256", seed=2))
        assert m.tasks_executed > 0
        # Tasks of the decided type spread across its equivalent cores
        # (not pinned to the first cluster).
        busiest = max(
            ks.placements.values() for ks in m.per_kernel.values()
        )
        assert m.tasks_executed == sum(sum(ks.placements.values()) for ks in m.per_kernel.values())

    def test_grws_steals_across_equivalent_clusters(self):
        from repro.runtime import Executor
        from repro.schedulers import GrwsScheduler
        from repro.workloads import build_workload

        ex = Executor(jetson_tx2_per_core(), GrwsScheduler(), seed=5)
        m = ex.run(build_workload("mm-256", seed=2))
        assert m.steals > 0

    def test_kernel_affinity_applies(self, percore, tx2):
        from repro.exec_model import GroundTruthTiming, KernelSpec

        k = KernelSpec("k", w_comp=1.0, w_bytes=0.0, type_affinity={"denver": 1.5})
        t_per = GroundTruthTiming(percore.memory).compute_time(
            k, percore.clusters_of_type("denver")[0].core_type, 1, 2.04
        )
        t_clu = GroundTruthTiming(tx2.memory).compute_time(
            k, tx2.cluster_by_type("denver").core_type, 1, 2.04
        )
        assert t_per == pytest.approx(t_clu)
