"""Tests for clusters, memory, voltage and platform factories."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, FrequencyError
from repro.hw import jetson_tx2, symmetric_platform
from repro.hw.platform import TX2_CPU_FREQS, TX2_MEM_FREQS
from repro.hw.voltage import VoltageCurve


class TestVoltage:
    def test_interpolation_monotone(self):
        v = VoltageCurve.linear(0.55, 0.25, 0.3, 2.1)
        volts = [v.volts(f) for f in TX2_CPU_FREQS]
        assert volts == sorted(volts)
        assert volts[0] > 0.5

    def test_clamped_outside_range(self):
        v = VoltageCurve([(1.0, 0.8), (2.0, 1.0)])
        assert v.volts(0.5) == 0.8
        assert v.volts(3.0) == 1.0

    def test_decreasing_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageCurve([(1.0, 1.0), (2.0, 0.9)])


class TestTx2Factory:
    def test_topology(self, tx2):
        assert tx2.n_cores == 6
        names = tx2.core_type_names()
        assert names == ["denver", "a57"]
        assert tx2.clusters[0].n_cores == 2
        assert tx2.clusters[1].n_cores == 4

    def test_core_ids_dense(self, tx2):
        assert [c.core_id for c in tx2.cores] == list(range(6))

    def test_initial_frequencies_max(self, tx2):
        assert tx2.clusters[0].freq == max(TX2_CPU_FREQS)
        assert tx2.memory.freq == max(TX2_MEM_FREQS)

    def test_allowed_core_counts(self, tx2):
        assert tx2.allowed_core_counts(tx2.clusters[0]) == [1, 2]
        assert tx2.allowed_core_counts(tx2.clusters[1]) == [1, 2, 4]

    def test_resource_configs(self, tx2):
        configs = tx2.resource_configs()
        assert len(configs) == 5  # denver:{1,2}, a57:{1,2,4}

    def test_cluster_by_type(self, tx2):
        assert tx2.cluster_by_type("denver").core_type.name == "denver"
        with pytest.raises(ConfigurationError):
            tx2.cluster_by_type("m1")

    def test_fresh_instances_independent(self):
        a, b = jetson_tx2(), jetson_tx2()
        a.clusters[0].set_freq(1.11)
        assert b.clusters[0].freq == max(TX2_CPU_FREQS)


class TestFrequencySetting:
    def test_set_freq_valid(self, tx2):
        tx2.clusters[0].set_freq(1.11)
        assert tx2.clusters[0].freq == 1.11

    def test_set_freq_invalid_raises(self, tx2):
        with pytest.raises(FrequencyError):
            tx2.clusters[0].set_freq(1.0)
        with pytest.raises(FrequencyError):
            tx2.memory.set_freq(0.5)

    def test_freq_change_callback(self, tx2):
        seen = []
        tx2.clusters[0].on_freq_change.append(lambda cl: seen.append(cl.freq))
        tx2.clusters[0].set_freq(1.11)
        tx2.clusters[0].set_freq(1.11)  # no-op does not refire
        assert seen == [1.11]

    def test_memory_bandwidth_scales_with_freq(self, tx2):
        hi = tx2.memory.bandwidth_capacity
        tx2.memory.set_freq(0.8)
        assert tx2.memory.bandwidth_capacity < hi

    def test_reset_frequencies(self, tx2):
        tx2.clusters[0].set_freq(0.345)
        tx2.memory.set_freq(0.408)
        tx2.reset_frequencies()
        assert tx2.clusters[0].freq == max(TX2_CPU_FREQS)
        assert tx2.memory.freq == max(TX2_MEM_FREQS)


class TestSymmetricFactory:
    def test_shape(self):
        p = symmetric_platform(n_clusters=3, cores_per_cluster=4)
        assert p.n_cores == 12
        assert len(p.clusters) == 3
        assert [c.core_id for c in p.cores] == list(range(12))

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            symmetric_platform(n_clusters=0)
