"""Property-based tests for energy accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.sensor import EnergyAccountant, PowerSensor
from repro.sim import Simulator


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=10.0),  # dt
            st.floats(min_value=0.0, max_value=100.0),   # power
        ),
        min_size=1,
        max_size=40,
    )
)
def test_property_accountant_matches_manual_integral(steps):
    """Piecewise-constant integration equals the hand-computed sum for
    any sequence of power changes."""
    acc = EnergyAccountant(rails=("cpu",))
    t = 0.0
    expected = 0.0
    prev_power = 0.0
    for dt, p in steps:
        expected += prev_power * dt
        t += dt
        acc.update(t, {"cpu": p})
        prev_power = p
    assert acc.energy("cpu") == pytest.approx(expected, rel=1e-12, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    power=st.floats(min_value=0.1, max_value=50.0),
    duration=st.floats(min_value=0.1, max_value=3.0),
)
def test_property_noiseless_sensor_converges_to_truth(power, duration):
    """For constant power the sampled energy approaches P*t as samples
    accumulate (error bounded by one sampling interval)."""
    sim = Simulator()
    sensor = PowerSensor(
        sim, lambda: {"cpu": power}, interval_s=0.005, noise_sigma=0.0,
        rails=("cpu",),
    )
    sensor.start()
    sim.run(until=duration)
    sensor.stop()
    truth = power * duration
    assert abs(sensor.energy("cpu") - truth) <= power * 0.005 + 1e-9


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_sensor_noise_is_unbiased(seed):
    """Multiplicative N(1, sigma) noise keeps long-run energy unbiased
    within a loose statistical band."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    sensor = PowerSensor(
        sim, lambda: {"cpu": 3.0}, interval_s=0.005, noise_sigma=0.05,
        rng=rng, rails=("cpu",),
    )
    sensor.start()
    sim.run(until=4.0)
    sensor.stop()
    truth = 3.0 * 4.0
    # 800 samples, sigma 5% -> standard error ~0.18%; allow 5 sigma.
    assert sensor.energy("cpu") == pytest.approx(truth, rel=0.01)
