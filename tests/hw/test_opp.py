"""Tests for OPP tables."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FrequencyError
from repro.hw.opp import OppTable


def test_sorted_and_immutable():
    t = OppTable([2.0, 1.0, 1.5])
    assert t.freqs == (1.0, 1.5, 2.0)
    assert t.min == 1.0 and t.max == 2.0


def test_empty_rejected():
    with pytest.raises(FrequencyError):
        OppTable([])


def test_nonpositive_rejected():
    with pytest.raises(FrequencyError):
        OppTable([1.0, 0.0])


def test_duplicates_rejected():
    with pytest.raises(FrequencyError):
        OppTable([1.0, 1.0])


def test_contains_tolerant_to_fp():
    t = OppTable([1.11])
    assert (1.11 + 1e-12) in t
    assert 1.2 not in t


def test_index_and_at_roundtrip():
    t = OppTable([0.5, 1.0, 2.0])
    for i, f in enumerate(t):
        assert t.index(f) == i
        assert t.at(i) == f


def test_index_unknown_raises():
    with pytest.raises(FrequencyError):
        OppTable([1.0]).index(1.5)


def test_nearest():
    t = OppTable([0.5, 1.0, 2.0])
    assert t.nearest(0.1) == 0.5
    assert t.nearest(1.4) == 1.0
    assert t.nearest(1.6) == 2.0
    assert t.nearest(99.0) == 2.0


def test_neighbours_interior_and_edges():
    t = OppTable([0.5, 1.0, 2.0])
    assert t.neighbours(1.0) == (0.5, 2.0)
    assert t.neighbours(0.5) == (1.0,)
    assert t.neighbours(2.0) == (1.0,)


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=10.0),
        min_size=1,
        max_size=20,
        unique=True,
    ),
    st.floats(min_value=-5.0, max_value=15.0),
)
def test_property_nearest_minimizes_distance(freqs, target):
    t = OppTable(freqs)
    best = t.nearest(target)
    assert all(abs(best - target) <= abs(f - target) + 1e-12 for f in t)
