"""Tests for the DVFS controller."""

from __future__ import annotations

import pytest

from repro.errors import FrequencyError
from repro.hw.dvfs import DvfsController


def make(sim, tx2, latency=100e-6):
    return DvfsController(sim, tx2.clusters[0], latency, name="denver")


def test_request_applies_after_latency(sim, tx2):
    ctl = make(sim, tx2)
    ctl.request(1.11)
    assert tx2.clusters[0].freq == 2.04  # not yet applied
    sim.run()
    assert tx2.clusters[0].freq == 1.11
    assert sim.now == 100e-6
    assert ctl.transitions == 1


def test_request_snaps_to_nearest_opp(sim, tx2):
    ctl = make(sim, tx2)
    got = ctl.request(1.15)
    assert got == 1.11
    sim.run()
    assert tx2.clusters[0].freq == 1.11


def test_same_freq_request_is_noop(sim, tx2):
    ctl = make(sim, tx2)
    ctl.request(2.04)
    sim.run()
    assert ctl.transitions == 0
    assert sim.pending_count() == 0


def test_newer_request_supersedes_pending(sim, tx2):
    ctl = make(sim, tx2)
    ctl.request(0.345)
    ctl.request(1.57)  # before the first applied
    sim.run()
    assert tx2.clusters[0].freq == 1.57
    assert ctl.transitions == 1


def test_target_freq_reports_pending(sim, tx2):
    ctl = make(sim, tx2)
    assert ctl.target_freq == 2.04
    ctl.request(1.11)
    assert ctl.target_freq == 1.11


def test_zero_latency_applies_immediately(sim, tx2):
    ctl = make(sim, tx2, latency=0.0)
    ctl.request(0.96)
    assert tx2.clusters[0].freq == 0.96


def test_on_applied_callbacks(sim, tx2):
    ctl = make(sim, tx2)
    seen = []
    ctl.on_applied.append(lambda c: seen.append(c.domain.freq))
    ctl.request(1.42)
    sim.run()
    assert seen == [1.42]


def test_memory_domain_controller(sim, tx2):
    ctl = DvfsController(sim, tx2.memory, 200e-6, name="emc")
    ctl.request(0.8)
    sim.run()
    assert tx2.memory.freq == 0.8


def test_far_out_of_range_request_raises(sim, tx2):
    """Targets more than one OPP step outside the ladder indicate a
    mis-scaled caller (GHz/MHz confusion) and must not silently snap."""
    ctl = make(sim, tx2)
    with pytest.raises(FrequencyError):
        ctl.request(2040.0)  # MHz passed where GHz expected
    with pytest.raises(FrequencyError):
        ctl.request(-1.0)
    assert ctl.requests == 0


def test_slightly_out_of_range_request_still_snaps(sim, tx2):
    ctl = make(sim, tx2)
    opps = tx2.clusters[0].opps
    got = ctl.request(opps.max + 0.01)  # within one step: snap, don't raise
    assert got == opps.max


def test_single_opp_domain_is_lenient(sim):
    from repro.hw.platform import odroid_xu4

    xu4 = odroid_xu4()
    assert len(xu4.memory.opps) == 1
    ctl = DvfsController(sim, xu4.memory, 0.0, name="emc")
    assert ctl.request(0.5) == xu4.memory.opps.max


def test_same_timestamp_requests_last_writer_wins(sim, tx2):
    """Two requests at the same simulated instant: the later call wins
    and exactly one transition is applied (the first apply event is
    cancelled, not left to fire alongside the second)."""
    ctl = make(sim, tx2)
    ctl.request(0.345)
    ctl.request(1.57)
    ctl.request(0.96)  # all at t=0
    applied = []
    ctl.on_applied.append(lambda c: applied.append(c.domain.freq))
    sim.run()
    assert tx2.clusters[0].freq == 0.96
    assert ctl.transitions == 1
    assert applied == [0.96]
    assert ctl.requests == 3
