"""Tests for the DVFS controller."""

from __future__ import annotations

from repro.hw.dvfs import DvfsController


def make(sim, tx2, latency=100e-6):
    return DvfsController(sim, tx2.clusters[0], latency, name="denver")


def test_request_applies_after_latency(sim, tx2):
    ctl = make(sim, tx2)
    ctl.request(1.11)
    assert tx2.clusters[0].freq == 2.04  # not yet applied
    sim.run()
    assert tx2.clusters[0].freq == 1.11
    assert sim.now == 100e-6
    assert ctl.transitions == 1


def test_request_snaps_to_nearest_opp(sim, tx2):
    ctl = make(sim, tx2)
    got = ctl.request(1.15)
    assert got == 1.11
    sim.run()
    assert tx2.clusters[0].freq == 1.11


def test_same_freq_request_is_noop(sim, tx2):
    ctl = make(sim, tx2)
    ctl.request(2.04)
    sim.run()
    assert ctl.transitions == 0
    assert sim.pending_count() == 0


def test_newer_request_supersedes_pending(sim, tx2):
    ctl = make(sim, tx2)
    ctl.request(0.345)
    ctl.request(1.57)  # before the first applied
    sim.run()
    assert tx2.clusters[0].freq == 1.57
    assert ctl.transitions == 1


def test_target_freq_reports_pending(sim, tx2):
    ctl = make(sim, tx2)
    assert ctl.target_freq == 2.04
    ctl.request(1.11)
    assert ctl.target_freq == 1.11


def test_zero_latency_applies_immediately(sim, tx2):
    ctl = make(sim, tx2, latency=0.0)
    ctl.request(0.96)
    assert tx2.clusters[0].freq == 0.96


def test_on_applied_callbacks(sim, tx2):
    ctl = make(sim, tx2)
    seen = []
    ctl.on_applied.append(lambda c: seen.append(c.domain.freq))
    ctl.request(1.42)
    sim.run()
    assert seen == [1.42]


def test_memory_domain_controller(sim, tx2):
    ctl = DvfsController(sim, tx2.memory, 200e-6, name="emc")
    ctl.request(0.8)
    sim.run()
    assert tx2.memory.freq == 0.8
