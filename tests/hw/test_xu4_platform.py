"""Tests for the ODROID-XU4 platform model (heterogeneous ladders)."""

from __future__ import annotations

import pytest

from repro.hw.platform import XU4_A7_FREQS, XU4_A15_FREQS, odroid_xu4
from repro.models import profile_and_fit


@pytest.fixture
def xu4():
    return odroid_xu4()


class TestTopology:
    def test_clusters(self, xu4):
        assert xu4.core_type_names() == ["a15", "a7"]
        assert xu4.n_cores == 8
        assert xu4.clusters[0].n_cores == 4
        assert xu4.clusters[1].n_cores == 4

    def test_heterogeneous_ladders(self, xu4):
        a15, a7 = xu4.clusters
        assert a15.opps.max == 2.0
        assert a7.opps.max == 1.4
        assert set(a7.opps.freqs) != set(a15.opps.freqs)

    def test_no_memory_dvfs(self, xu4):
        assert len(xu4.memory.opps) == 1
        assert xu4.memory.freq == 0.825

    def test_resource_configs(self, xu4):
        assert len(xu4.resource_configs()) == 6  # {1,2,4} per cluster

    def test_a15_faster_but_hungrier(self, xu4):
        a15, a7 = (cl.core_type for cl in xu4.clusters)
        assert a15.giga_ops_per_ghz > 2 * a7.giga_ops_per_ghz
        assert a15.k_dyn > 4 * a7.k_dyn


class TestModelsOnXu4:
    @pytest.fixture(scope="class")
    def suite(self):
        return profile_and_fit(odroid_xu4, seed=0)

    def test_per_config_reference_frequencies(self, suite):
        ref_a15, samp_a15 = suite.ref_freqs("a15", 1)
        ref_a7, samp_a7 = suite.ref_freqs("a7", 1)
        assert ref_a15 == max(XU4_A15_FREQS)
        assert ref_a7 == max(XU4_A7_FREQS)
        assert samp_a15 in XU4_A15_FREQS and samp_a15 < ref_a15
        assert samp_a7 in XU4_A7_FREQS and samp_a7 < ref_a7

    def test_predictions_sane_per_cluster(self, suite):
        # Halving A7's frequency roughly doubles a compute task's time.
        t_hi = suite.predict_time("a7", 1, 0.0, 0.01, 1.4, 0.825)
        t_lo = suite.predict_time("a7", 1, 0.0, 0.01, 0.6, 0.825)
        assert t_lo / t_hi == pytest.approx(1.4 / 0.6, rel=0.15)

    def test_joss_runs_end_to_end(self, suite):
        from repro.core import JossScheduler
        from repro.runtime import Executor
        from repro.workloads import build_workload

        ex = Executor(odroid_xu4(), JossScheduler(suite), seed=5)
        m = ex.run(build_workload("mm-256", seed=2))
        assert m.tasks_executed > 0
        # Single memory OPP: the knob never actuates.
        assert m.memory_freq_transitions == 0

    def test_suite_roundtrip_keeps_per_config_refs(self, suite, tmp_path):
        from repro.models import load_suite, save_suite

        loaded = load_suite(save_suite(suite, tmp_path / "xu4.json"))
        assert loaded.ref_freqs("a7", 2) == suite.ref_freqs("a7", 2)
        assert loaded.ref_freqs("a15", 4) == suite.ref_freqs("a15", 4)
