"""Tests for the ground-truth power model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import jetson_tx2


@pytest.fixture
def pm(tx2):
    return tx2.power_model


class TestCpuPower:
    def test_dynamic_power_increases_with_frequency(self, tx2, pm):
        ct = tx2.clusters[0].core_type
        v = tx2.clusters[0].voltage
        p_lo = pm.core_dynamic_power(ct, 0.345, v.volts(0.345), mb_inst=0.0)
        p_hi = pm.core_dynamic_power(ct, 2.04, v.volts(2.04), mb_inst=0.0)
        assert p_hi > p_lo
        # Superlinear in f because V rises with f.
        assert p_hi / p_lo > 2.04 / 0.345

    def test_stalled_core_draws_less(self, tx2, pm):
        ct = tx2.clusters[0].core_type
        v = tx2.clusters[0].volts
        f = tx2.clusters[0].freq
        busy = pm.core_dynamic_power(ct, f, v, mb_inst=0.0)
        stalled = pm.core_dynamic_power(ct, f, v, mb_inst=1.0)
        assert stalled < busy
        assert stalled == pytest.approx(busy * ct.stall_activity)

    def test_denver_hungrier_than_a57(self, tx2, pm):
        d, a = tx2.clusters[0], tx2.clusters[1]
        pd = pm.core_dynamic_power(d.core_type, 2.04, d.volts, 0.0)
        pa = pm.core_dynamic_power(a.core_type, 2.04, a.volts, 0.0)
        assert pd > pa

    def test_cluster_power_counts_idle_cores(self, tx2, pm):
        cl = tx2.clusters[1]
        all_idle = pm.cluster_power(cl, [None] * 4)
        one_busy = pm.cluster_power(cl, [0.0, None, None, None])
        assert one_busy > all_idle > 0

    def test_cpu_idle_power_matches_cluster_power_all_idle(self, tx2, pm):
        cl = tx2.clusters[1]
        assert pm.cpu_idle_power(cl) == pytest.approx(
            pm.cluster_power(cl, [None] * cl.n_cores)
        )

    def test_idle_power_decreases_with_frequency(self, tx2, pm):
        cl = tx2.clusters[0]
        assert pm.cpu_idle_power(cl, 0.345) < pm.cpu_idle_power(cl, 2.04)

    @given(mb=st.floats(min_value=0.0, max_value=1.0))
    def test_property_dynamic_power_monotone_in_compute_intensity(self, mb):
        tx2 = jetson_tx2()
        pm = tx2.power_model
        ct = tx2.clusters[0].core_type
        v = tx2.clusters[0].volts
        p = pm.core_dynamic_power(ct, 2.04, v, mb)
        p_more_compute = pm.core_dynamic_power(ct, 2.04, v, mb * 0.5)
        assert p_more_compute >= p


class TestMemoryPower:
    def test_idle_power_increases_with_frequency(self, tx2, pm):
        lo = pm.memory_idle_power(tx2.memory, 0.408)
        hi = pm.memory_idle_power(tx2.memory, 1.866)
        assert hi > lo > 0

    def test_power_increases_with_bandwidth(self, tx2, pm):
        idle = pm.memory_power(tx2.memory, 0.0)
        busy = pm.memory_power(tx2.memory, 20.0)
        assert busy > idle
        assert idle == pytest.approx(pm.memory_idle_power(tx2.memory))

    def test_utilisation_term_saturates(self, tx2, pm):
        cap = tx2.memory.bandwidth_capacity
        at_cap = pm.memory_power(tx2.memory, cap)
        over = pm.memory_power(tx2.memory, cap * 2)
        # Only the per-GB term keeps growing; controller util is capped.
        assert over - at_cap == pytest.approx(pm.params.mem_energy_per_gb * cap)
