"""Tests for core-type validation and core state."""

from __future__ import annotations

import pytest

from repro.hw.core import Core, CoreType
from repro.hw.platform import A7, A15, A57, DENVER


class TestCoreTypeValidation:
    def test_positive_throughput_required(self):
        with pytest.raises(ValueError):
            CoreType("bad", giga_ops_per_ghz=0, stream_bw_per_ghz=1,
                     k_dyn=1, k_static=0.1)
        with pytest.raises(ValueError):
            CoreType("bad", giga_ops_per_ghz=1, stream_bw_per_ghz=-1,
                     k_dyn=1, k_static=0.1)

    def test_stall_activity_bounds(self):
        with pytest.raises(ValueError):
            CoreType("bad", giga_ops_per_ghz=1, stream_bw_per_ghz=1,
                     k_dyn=1, k_static=0.1, stall_activity=1.5)

    def test_shipped_types_consistent(self):
        # Big cores are faster and hungrier than their little partners.
        assert DENVER.giga_ops_per_ghz > A57.giga_ops_per_ghz
        assert DENVER.k_dyn > A57.k_dyn
        assert A15.giga_ops_per_ghz > A7.giga_ops_per_ghz
        assert A15.k_dyn > A7.k_dyn


class TestCoreState:
    def test_core_reflects_cluster(self, tx2):
        core = tx2.clusters[0].cores[0]
        assert core.core_type is tx2.clusters[0].core_type
        tx2.clusters[0].set_freq(1.11)
        assert core.freq == 1.11

    def test_busy_idle_listing(self, tx2):
        cl = tx2.clusters[1]
        assert cl.busy_cores() == []
        cl.cores[1].busy = True
        assert cl.busy_cores() == [cl.cores[1]]
        assert len(cl.idle_cores()) == 3

    def test_hash_is_core_id(self, tx2):
        assert hash(tx2.cores[3]) == 3
        assert len({c for c in tx2.cores}) == 6
