"""Tests for the execution timeline tool."""

from __future__ import annotations

import json

import pytest

from repro.analysis.timeline import Segment, Timeline
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, TaskGraph
from repro.schedulers import GrwsScheduler
from repro.sim.trace import Tracer

K = KernelSpec("work", w_comp=0.2, w_bytes=0.01)


def traced_run(n=12):
    tracer = Tracer(categories=["activity-start", "activity-end"])
    g = TaskGraph("t")
    prev = None
    for _ in range(n):
        prev = g.add_task(K, deps=[prev] if prev else None)
        g.add_task(K, deps=[prev])
    ex = Executor(jetson_tx2(), GrwsScheduler(), seed=2, tracer=tracer)
    m = ex.run(g)
    return Timeline.from_tracer(tracer), m


class TestTimeline:
    def test_segments_cover_all_tasks(self):
        tl, m = traced_run()
        assert len(tl.segments) == m.tasks_executed  # nc=1: one segment/task

    def test_segments_well_formed(self):
        tl, _ = traced_run()
        for s in tl.segments:
            assert s.end >= s.start >= 0
            assert s.duration > 0
            assert s.kernel == "work"

    def test_no_overlap_per_core(self):
        tl, _ = traced_run()
        for core in tl.core_ids():
            segs = sorted(
                (s for s in tl.segments if s.core == core),
                key=lambda s: s.start,
            )
            for a, b in zip(segs, segs[1:]):
                assert b.start >= a.end - 1e-12

    def test_busy_time_le_makespan(self):
        tl, m = traced_run()
        for core in tl.core_ids():
            assert tl.busy_time(core) <= tl.makespan + 1e-9
            assert 0.0 <= tl.utilisation(core) <= 1.0
        assert tl.makespan == pytest.approx(m.makespan, rel=1e-6)

    def test_json_roundtrip(self, tmp_path):
        tl, _ = traced_run()
        path = tl.save(tmp_path / "tl.json")
        data = json.loads(path.read_text())
        assert data["makespan"] == tl.makespan
        assert len(data["segments"]) == len(tl.segments)

    def test_ascii_render(self):
        tl, _ = traced_run()
        art = tl.render_ascii(width=40)
        assert "core 0" in art
        assert "legend" in art
        assert "a=work" in art

    def test_empty_timeline(self):
        assert Timeline([], 0.0).render_ascii() == "(empty timeline)"

    def test_manual_segments(self):
        tl = Timeline(
            [Segment(0, "x", 0.0, 1.0), Segment(0, "y", 1.0, 2.0)],
            makespan=2.0,
        )
        assert tl.kernels() == ["x", "y"]
        assert tl.busy_time(0) == pytest.approx(2.0)
        assert tl.utilisation(0) == pytest.approx(1.0)


def test_cli_trace(capsys, tmp_path):
    from repro.cli import main

    out_path = tmp_path / "timeline.json"
    rc = main(
        ["trace", "-w", "mm-256", "-s", "GRWS", "--width", "50",
         "-o", str(out_path)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "core 0" in out
    assert out_path.exists()
