"""Tests for DVFS actuation tracing in timelines."""

from __future__ import annotations

from repro.analysis.timeline import FreqEvent, Timeline
from repro.core import JossScheduler
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor
from repro.sim.trace import Tracer
from repro.workloads import build_workload


def test_freq_events_recorded_for_joss_run():
    suite = profile_and_fit(jetson_tx2, seed=0)
    tracer = Tracer(categories=["activity-start", "activity-end", "freq-change"])
    ex = Executor(jetson_tx2(), JossScheduler(suite), seed=7, tracer=tracer)
    m = ex.run(build_workload("mm-256", seed=2))
    tl = Timeline.from_tracer(tracer)
    assert tl.freq_events, "JOSS must actuate DVFS at least once"
    # The recorded transition counts match the controllers' counters.
    cpu_changes = [e for e in tl.freq_events if e.domain.startswith("cpu")]
    assert len(cpu_changes) == m.cluster_freq_transitions
    mem_changes = [e for e in tl.freq_events if e.domain == "emc"]
    assert len(mem_changes) == m.memory_freq_transitions
    # Frequencies are valid OPPs of their domain.
    plat = jetson_tx2()
    for e in cpu_changes:
        assert e.freq in plat.clusters[0].opps
    for e in mem_changes:
        assert e.freq in plat.memory.opps
    # Rendering mentions the DVFS tracks.
    art = tl.render_ascii(width=40)
    assert "dvfs" in art


def test_freq_series_filters_by_domain():
    tl = Timeline(
        [],
        makespan=1.0,
        freq_events=[
            FreqEvent(0.1, "cpu0", 1.11),
            FreqEvent(0.2, "emc", 0.8),
            FreqEvent(0.3, "cpu0", 2.04),
        ],
    )
    assert tl.domains() == ["cpu0", "emc"]
    assert tl.freq_series("cpu0") == [(0.1, 1.11), (0.3, 2.04)]
    assert tl.freq_series("nope") == []


def test_grws_run_has_no_freq_events():
    from repro.schedulers import GrwsScheduler

    tracer = Tracer(categories=["freq-change"])
    ex = Executor(jetson_tx2(), GrwsScheduler(), seed=7, tracer=tracer)
    ex.run(build_workload("mm-256", seed=2))
    assert len(tracer) == 0


def test_executor_single_shot():
    import pytest

    from repro.errors import SchedulingError
    from repro.schedulers import GrwsScheduler

    ex = Executor(jetson_tx2(), GrwsScheduler(), seed=1)
    ex.run(build_workload("mm-256", seed=2))
    with pytest.raises(SchedulingError):
        ex.run(build_workload("mm-256", seed=2))
