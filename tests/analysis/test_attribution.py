"""Tests for energy attribution and analysis reports."""

from __future__ import annotations

import pytest

from repro.analysis import EnergyAttributor, energy_breakdown_report, placement_report
from repro.analysis.reports import cluster_fraction, placement_fractions
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.runtime import Executor, TaskGraph
from repro.schedulers import GrwsScheduler

COMPUTE = KernelSpec("compute", w_comp=0.3, w_bytes=0.002)
MEMORY = KernelSpec("memory", w_comp=0.01, w_bytes=0.05)


def run_with_attribution(graph, seed=3):
    ex = Executor(jetson_tx2(), GrwsScheduler(), seed=seed)
    att = EnergyAttributor(ex.engine)
    metrics = ex.run(graph)
    return ex, att, metrics


def mixed(n=30):
    g = TaskGraph("mixed")
    prev = None
    for i in range(n):
        a = g.add_task(COMPUTE, deps=[prev] if prev else None)
        b = g.add_task(MEMORY, deps=[prev] if prev else None)
        prev = g.add_task(COMPUTE, deps=[a, b])
    return g


class TestAttribution:
    def test_energy_conservation(self):
        """Attributed dynamic energy + idle floor equals the measured
        rail energy (exact accounting)."""
        ex, att, m = run_with_attribution(mixed())
        total_attributed = att.total_dynamic() + att.idle_energy
        assert total_attributed == pytest.approx(m.total_energy_exact, rel=1e-6)

    def test_compute_kernel_draws_cpu_memory_kernel_draws_mem(self):
        _, att, _ = run_with_attribution(mixed())
        comp = att.per_kernel["compute"]
        mem = att.per_kernel["memory"]
        assert comp.cpu / max(comp.mem, 1e-12) > mem.cpu / max(mem.mem, 1e-12)
        assert mem.mem > comp.mem * 0.5

    def test_busy_time_positive(self):
        _, att, m = run_with_attribution(mixed())
        for ke in att.per_kernel.values():
            assert ke.busy_time > 0
        total_busy = sum(ke.busy_time for ke in att.per_kernel.values())
        kernel_time = sum(ks.total_time for ks in m.per_kernel.values())
        assert total_busy == pytest.approx(kernel_time, rel=0.25)

    def test_fraction_of(self):
        _, att, _ = run_with_attribution(mixed())
        fracs = [att.fraction_of(k) for k in ("compute", "memory")]
        assert sum(fracs) == pytest.approx(1.0)
        assert att.fraction_of("missing") == 0.0


class TestReports:
    def test_placement_fractions_sum_to_one(self):
        _, _, m = run_with_attribution(mixed())
        fr = placement_fractions(m, "compute")
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_cluster_fraction(self):
        _, _, m = run_with_attribution(mixed())
        d = cluster_fraction(m, "compute", "denver")
        a = cluster_fraction(m, "compute", "a57")
        assert d + a == pytest.approx(1.0)
        assert 0 < d < 1  # GRWS spreads across clusters

    def test_missing_kernel_empty(self):
        _, _, m = run_with_attribution(mixed())
        assert placement_fractions(m, "nope") == {}
        assert cluster_fraction(m, "nope", "denver") == 0.0

    def test_report_rendering(self):
        _, att, m = run_with_attribution(mixed())
        pr = placement_report(m)
        assert "compute" in pr and "placements" in pr
        er = energy_breakdown_report(att)
        assert "(idle floor)" in er
