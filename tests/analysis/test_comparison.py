"""Tests for the run-comparison tool."""

from __future__ import annotations

import pytest

from repro.analysis.comparison import compare_runs
from repro.bench.runner import BenchConfig, run_one
from repro.runtime.metrics import RunMetrics


@pytest.fixture(scope="module")
def two_runs():
    cfg = BenchConfig(repetitions=1)
    a = run_one("slu", "GRWS", cfg)
    b = run_one("slu", "JOSS", cfg)
    return a, b


class TestComparison:
    def test_headline_ratios(self, two_runs):
        a, b = two_runs
        cmp = compare_runs(a, b)
        assert cmp.energy_ratio == pytest.approx(b.total_energy / a.total_energy)
        assert cmp.time_ratio == pytest.approx(b.makespan / a.makespan)

    def test_kernel_deltas_cover_union(self, two_runs):
        a, b = two_runs
        cmp = compare_runs(a, b)
        names = {d.kernel for d in cmp.kernel_deltas}
        assert names == set(a.per_kernel) | set(b.per_kernel)

    def test_render_contains_sections(self, two_runs):
        a, b = two_runs
        text = compare_runs(a, b).render()
        assert "total energy" in text
        assert "Per-kernel" in text
        assert "slu.bmod" in text
        assert "GRWS" in text and "JOSS" in text

    def test_missing_kernel_handled(self):
        a = RunMetrics(scheduler="A")
        a.cpu_energy = a.mem_energy = 1.0
        a.makespan = 1.0
        a.kernel_stats("only-in-a").record(0.5, "a57x1")
        b = RunMetrics(scheduler="B")
        b.cpu_energy = b.mem_energy = 1.0
        b.makespan = 1.0
        cmp = compare_runs(a, b)
        d = cmp.kernel_deltas[0]
        assert d.mean_time_b == 0.0
        cmp.render()  # must not raise
