"""The shipped examples must run end-to-end.

They execute in-process (sharing the per-process model-suite cache, so
the platform is profiled once for the whole module) with stdout
captured; each must complete without raising.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES = sorted(
    p for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "tradeoff_explorer", "custom_platform",
            "scheduler_shootout", "inspect_run"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # it said something substantial


def test_quickstart_reports_savings(capsys):
    runpy.run_path(
        str(Path(__file__).parent.parent / "examples" / "quickstart.py"),
        run_name="__main__",
    )
    out = capsys.readouterr().out
    assert "JOSS saves" in out
    assert "BMOD" in out
