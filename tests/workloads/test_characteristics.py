"""Tests for per-workload kernel characteristics and DAG shapes —
the Table 1 semantics the schedulers rely on."""

from __future__ import annotations

import pytest

from repro.exec_model import GroundTruthTiming
from repro.hw import jetson_tx2
from repro.workloads import build_workload
from repro.workloads.fibonacci import LEAF
from repro.workloads.matmul import _KERNELS as MM
from repro.workloads.memcopy import _KERNELS as MC
from repro.workloads.sparselu import BMOD


@pytest.fixture(scope="module")
def timing():
    return GroundTruthTiming(jetson_tx2().memory)


@pytest.fixture(scope="module")
def tx2m():
    return jetson_tx2()


class TestIntensities:
    def test_mm_compute_bound(self, timing, tx2m):
        mb = timing.memory_boundness(MM[256], tx2m.clusters[1].core_type, 1, 2.04, 1.866)
        assert mb < 0.2

    def test_mc_memory_bound(self, timing, tx2m):
        mb = timing.memory_boundness(MC[4096], tx2m.clusters[1].core_type, 1, 2.04, 1.866)
        assert mb > 0.6

    def test_bmod_denver_advantage(self, timing, tx2m):
        """Paper: a single Denver core runs BMOD ~3.4x faster than A57."""
        td = timing.duration(BMOD, tx2m.clusters[0].core_type, 1, 2.04, 1.866)
        ta = timing.duration(BMOD, tx2m.clusters[1].core_type, 1, 2.04, 1.866)
        assert ta / td == pytest.approx(3.4, rel=0.05)

    def test_fb_leaf_is_fine_grained(self, timing, tx2m):
        t = timing.duration(LEAF, tx2m.clusters[1].core_type, 1, 2.04, 1.866)
        assert t < 500e-6  # below the coarsening threshold


class TestDagShapes:
    def test_slu_bmod_dominates(self):
        g = build_workload("slu", seed=3)
        counts = g.kernel_counts()
        total = sum(counts.values())
        assert counts["slu.bmod"] / total > 0.7  # paper: 91% at full size

    def test_slu_kernel_dependency_order(self):
        """LU0 of step k precedes the FWD/BDIV/BMOD of step k."""
        g = build_workload("slu", blocks=6, seed=0)
        by_kernel = {}
        for t in g.tasks:
            by_kernel.setdefault(t.kernel.name, []).append(t)
        first_bmod = by_kernel["slu.bmod"][0]
        # Its dependencies include a BDIV and an FWD.
        dep_kernels = set()
        for t in g.tasks:
            if first_bmod in t.dependents:
                dep_kernels.add(t.kernel.name)
        assert {"slu.fwd", "slu.bdiv"} <= dep_kernels

    def test_hd_sizes_scale_granularity(self):
        """Bigger HD problem -> fewer tasks with more work each."""
        from repro.workloads.heat import _kernels

        j_small, _ = _kernels("small")
        j_huge, _ = _kernels("huge")
        assert j_huge.w_comp > j_small.w_comp * 10

    def test_fb_unfolds_dynamically(self):
        """Not all leaves are ready at t=0 (spawn tasks gate them)."""
        g = build_workload("fb", term=10)
        roots = g.roots()
        assert len(roots) == 1
        assert roots[0].kernel.name == "fb.spawn"

    def test_vg_layer_structure(self):
        g = build_workload("vg")
        counts = g.kernel_counts()
        assert counts["vg.join"] >= 16  # one join per layer per iteration
        # Five conv groups + FC tail, per the real VGG-16 architecture.
        for name in ("vg.g1", "vg.g2", "vg.g3", "vg.g4", "vg.g5", "vg.fc"):
            assert counts[name] >= 10  # enough invocations for sampling

    def test_vg_layer_profiles_match_architecture(self):
        from repro.workloads.vgg import layer_profiles

        profiles = {p.name: p for p in layer_profiles()}
        # 13 convolutions + 3 FC layers = VGG-16.
        assert sum(p.n_layers for p in profiles.values()) == 16
        # Mid groups carry the most compute (real VGG-16 FLOP shape)...
        assert profiles["g3"].flops > profiles["g1"].flops
        assert profiles["g3"].flops > profiles["g5"].flops
        # ...while the FC tail is weight-traffic dominated.
        assert profiles["fc"].traffic > profiles["g1"].traffic
        assert profiles["fc"].flops < profiles["g5"].flops
        # Spatial fork width shrinks with pooling.
        assert profiles["g1"].blocks > profiles["g2"].blocks >= profiles["g3"].blocks

    def test_dp_iteration_barriers(self):
        g = build_workload("dp")
        counts = g.kernel_counts()
        # one reduce per iteration, blocks >> reduces
        assert counts["dp.block"] > counts["dp.reduce"] * 5

    def test_kernels_invoked_often_enough_for_sampling(self):
        """Every kernel must support the 10-slot sampling plan."""
        for name in ("slu", "vg", "bi", "dp", "al", "hd-small"):
            g = build_workload(name, seed=3)
            for kname, count in g.kernel_counts().items():
                assert count >= 10, f"{name}:{kname} has only {count} tasks"
