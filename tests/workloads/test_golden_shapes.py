"""Golden structural stats for the workload suite.

Pins the scale-1 task counts, kernel mixes and dop of every workload
so accidental generator changes are caught (the bench tolerances are
calibrated against these shapes).  Update deliberately when a workload
is redesigned — and recalibrate EXPERIMENTS.md when you do.
"""

from __future__ import annotations

import pytest

from repro.workloads import build_workload

#: (tasks, dop, dominant kernel) at scale=1, seed=3.
GOLDEN = {
    "hd-small": (252, 9.00, "hd.jacobi.small"),
    "hd-big": (56, 4.00, "hd.jacobi.big"),
    "hd-huge": (32, 4.00, "hd.jacobi.huge"),
    "dp": (325, 6.50, "dp.block"),
    "vg": (288, 2.25, "vg.g1"),
    "al": (248, 4.77, "al.spmv"),
    "mm-256": (120, 4.00, "mm.256"),
    "mm-512": (40, 4.00, "mm.512"),
    "mc-4096": (100, 4.00, "mc.4096"),
    "mc-8192": (48, 4.00, "mc.8192"),
    "st-512": (100, 4.00, "st.512"),
    "st-2048": (100, 4.00, "st.2048"),
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_golden_shape(name):
    tasks, dop, dominant = GOLDEN[name]
    g = build_workload(name, scale=1.0, seed=3)
    assert len(g) == tasks
    assert g.dop() == pytest.approx(dop, abs=0.01)
    counts = g.kernel_counts()
    assert max(counts, key=counts.get) == dominant


def test_randomised_workloads_stay_in_band():
    """BI and FB vary structurally (seeded), but within bands."""
    bi = build_workload("bi", scale=1.0, seed=3)
    assert 150 <= len(bi) <= 450
    fb = build_workload("fb", scale=1.0, seed=3)
    assert 1500 <= len(fb) <= 3500
    slu = build_workload("slu", scale=1.0, seed=3)
    assert 400 <= len(slu) <= 600
    assert slu.kernel_counts()["slu.bmod"] / len(slu) > 0.7
