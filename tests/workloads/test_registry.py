"""Tests for the workload registry and shared structural invariants."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads import build_workload, get_workload, workload_names, workload_table


def test_fifteen_workloads():
    assert len(workload_names()) == 15


def test_unknown_workload_rejected():
    with pytest.raises(WorkloadError):
        get_workload("doom")


def test_invalid_scale_rejected():
    with pytest.raises(WorkloadError):
        build_workload("dp", scale=0.0)


@pytest.mark.parametrize("name", workload_names())
def test_structural_invariants(name):
    g = build_workload(name, scale=1.0, seed=5)
    g.validate()
    assert len(g) > 10
    assert g.dop() >= 1.0
    # Dependencies are acyclic by construction; roots exist.
    assert g.roots()
    # Every kernel name is namespaced to its workload family.
    for k in g.kernels():
        assert "." in k.name


@pytest.mark.parametrize("name", workload_names())
def test_scale_grows_task_count(name):
    small = len(build_workload(name, scale=1.0))
    big = len(build_workload(name, scale=3.0))
    assert big > small


def test_workload_table_contents():
    rows = {r["name"]: r for r in workload_table()}
    assert rows["slu"]["abbr"] == "SLU"
    assert rows["fb"]["paper_tasks"] == 57314
    assert all(r["tasks"] > 0 and r["dop"] >= 1 for r in rows.values())


def test_seed_changes_randomised_workloads():
    a = len(build_workload("bi", seed=1))
    b = len(build_workload("bi", seed=2))
    assert a != b  # round widths are random


def test_same_seed_reproducible():
    a = build_workload("slu", seed=9)
    b = build_workload("slu", seed=9)
    assert len(a) == len(b)
    assert a.kernel_counts() == b.kernel_counts()


@settings(max_examples=20, deadline=None)
@given(
    dop=st.integers(min_value=1, max_value=6),
    size=st.sampled_from([256, 512]),
)
def test_property_mm_dop_exact(dop, size):
    """MM's chain construction hits the requested dop exactly."""
    g = build_workload(f"mm-{size}", dop=dop)
    assert g.dop() == pytest.approx(dop)
