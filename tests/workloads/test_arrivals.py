"""Seeded open-arrival streams: determinism, validation, end-to-end."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.hw.platform import jetson_tx2
from repro.runtime.executor import Executor
from repro.schedulers.registry import make_scheduler
from repro.workloads.arrivals import ArrivalSpec


class TestTraceDeterminism:
    @pytest.mark.parametrize("pattern", ["poisson", "bursty", "heavy"])
    def test_same_seed_same_trace(self, pattern):
        a = ArrivalSpec(pattern=pattern, rate=40, count=12, seed=9).trace()
        b = ArrivalSpec(pattern=pattern, rate=40, count=12, seed=9).trace()
        assert a == b

    @pytest.mark.parametrize("pattern", ["poisson", "bursty", "heavy"])
    def test_different_seed_different_trace(self, pattern):
        a = ArrivalSpec(pattern=pattern, rate=40, count=12, seed=1).trace()
        b = ArrivalSpec(pattern=pattern, rate=40, count=12, seed=2).trace()
        assert [i.time for i in a] != [i.time for i in b]

    def test_releases_sorted_and_nonnegative(self):
        trace = ArrivalSpec(pattern="bursty", rate=80, count=20, seed=3).trace()
        releases = [i.time for i in trace]
        assert releases == sorted(releases)
        assert all(r >= 0 for r in releases)
        assert len(trace) == 20

    def test_deadline_is_release_plus_relative(self):
        plan = ArrivalSpec(rate=50, count=5, deadline=0.02, seed=0).build(
            "hd-small", scale=0.25
        )
        assert len(plan.instances) == 5
        for inst in plan.instances:
            assert inst.deadline == pytest.approx(inst.release + 0.02)

    def test_no_deadline_means_none(self):
        plan = ArrivalSpec(rate=50, count=3, seed=0).build(
            "hd-small", scale=0.25
        )
        assert all(inst.deadline is None for inst in plan.instances)

    def test_workload_mix_is_seeded(self):
        kw = dict(rate=50, count=30, workloads=("fb", "mc-4096"), seed=4)
        a = [i.workload for i in ArrivalSpec(**kw).trace()]
        b = [i.workload for i in ArrivalSpec(**kw).trace()]
        assert a == b
        assert set(a) == {"fb", "mc-4096"}


class TestSpecForm:
    def test_round_trips_through_dict(self):
        spec = ArrivalSpec(pattern="heavy", rate=25, count=7,
                           deadline=0.1, heavy_shape=2.0, seed=5)
        again = ArrivalSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    def test_hash_ignores_unknown_keys_on_load(self):
        spec = ArrivalSpec(rate=30, count=4)
        data = dict(spec.to_dict(), future_field=1)
        assert ArrivalSpec.from_dict(data) == spec

    def test_hash_differs_by_field(self):
        assert (ArrivalSpec(rate=30, count=4).spec_hash
                != ArrivalSpec(rate=31, count=4).spec_hash)

    @pytest.mark.parametrize("bad", [
        dict(pattern="uniform"),
        dict(rate=0),
        dict(count=0),
        dict(deadline=0.0),
        dict(burstiness=0.5),
        dict(heavy_shape=1.0),
    ])
    def test_validation_rejects(self, bad):
        with pytest.raises(WorkloadError):
            ArrivalSpec(**bad)


class TestEndToEnd:
    def _run(self, sched_name="GRWS", **spec_kw):
        spec_kw.setdefault("rate", 60)
        spec_kw.setdefault("count", 5)
        spec_kw.setdefault("seed", 2)
        plan = ArrivalSpec(**spec_kw).build("hd-small", scale=0.25)
        sched = make_scheduler(sched_name, None)
        return Executor(jetson_tx2(), sched, seed=11, arrivals=plan).run(
            plan.graph
        )

    def test_all_instances_complete(self):
        m = self._run()
        assert m.dags_arrived == 5
        assert m.dags_completed == 5

    def test_tight_deadline_records_misses_and_tardiness(self):
        m = self._run(deadline=1e-4)
        assert m.deadline_misses == 5
        assert m.total_tardiness > 0
        assert 0 < m.max_tardiness <= m.total_tardiness

    def test_loose_deadline_has_no_misses(self):
        m = self._run(deadline=10.0)
        assert m.deadline_misses == 0
        assert m.total_tardiness == 0.0

    def test_runs_are_bit_identical(self):
        a = self._run(deadline=0.01)
        b = self._run(deadline=0.01)
        assert a.to_dict() == b.to_dict()

    def test_edf_scheduler_drains_the_storm(self):
        m = self._run("EDF", deadline=0.01)
        assert m.dags_completed == 5

    def test_closed_system_metrics_stay_zero(self):
        from repro.workloads.registry import build_workload

        sched = make_scheduler("GRWS", None)
        graph = build_workload("hd-small", scale=0.25, seed=3)
        m = Executor(jetson_tx2(), sched, seed=11).run(graph)
        assert m.dags_arrived == 0 and m.dags_completed == 0
        assert m.deadline_misses == 0 and m.total_tardiness == 0.0
