"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "slu" in out
    assert "JOSS" in out
    assert "fig8" in out


def test_version_exits():
    with pytest.raises(SystemExit) as e:
        main(["--version"])
    assert e.value.code == 0


def test_run_single(capsys):
    assert main(["run", "-w", "mm-256", "-s", "GRWS", "--repetitions", "1"]) == 0
    out = capsys.readouterr().out
    assert "mm-256" in out
    assert "E_tot" in out


def test_run_multiple_with_ratio(capsys):
    rc = main(
        ["run", "-w", "mm-256", "-s", "GRWS", "JOSS",
         "--repetitions", "1", "-v"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "vs first" in out
    assert "mm.256" in out  # verbose decision dump


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-w", "nope", "-s", "GRWS"])


def test_experiment_tab1(capsys, tmp_path):
    assert main(["experiment", "tab1", "-o", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert (tmp_path / "tab1.txt").exists()


def test_experiment_unknown(capsys):
    assert main(["experiment", "nope"]) == 2


def test_profile(capsys):
    assert main(["profile"]) == 0
    out = capsys.readouterr().out
    assert "jetson-tx2" in out
    assert "<denver, 2>" in out


def test_trace_chrome_export(capsys, tmp_path):
    chrome = tmp_path / "trace.json"
    rc = main(
        ["trace", "-w", "fb", "-s", "GRWS", "--chrome", str(chrome)]
    )
    assert rc == 0
    assert "Chrome trace" in capsys.readouterr().out
    import json

    data = json.loads(chrome.read_text())
    assert any(e["ph"] == "X" for e in data["traceEvents"])


def test_sweep_cold_then_cached(capsys, tmp_path):
    args = [
        "sweep", "-w", "fb", "-s", "GRWS", "--repetitions", "1",
        "--cache-dir", str(tmp_path), "-q",
    ]
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert "1 total, 1 executed, 0 cache hits" in cold
    assert "E_tot" in cold
    # Unchanged grid: pure cache hits, nothing re-executed.
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert "0 executed, 1 cache hits" in warm
    assert "cache hit rate: 100.0%" in warm
    assert "speedup" in warm


def test_sweep_parallel_reports_dispatch_telemetry(capsys, tmp_path):
    from repro.sweep import shutdown_warm_pool

    out_json = tmp_path / "out.json"
    rc = main(
        ["sweep", "-w", "fb", "-s", "GRWS", "--repetitions", "2",
         "--workers", "2", "--no-cache", "-q", "-o", str(out_json)]
    )
    shutdown_warm_pool()
    assert rc == 0
    out = capsys.readouterr().out
    assert "dispatch:" in out and "pool" in out
    import json

    telemetry = json.loads(out_json.read_text())["telemetry"]
    assert telemetry["chunks"] >= 1
    assert telemetry["bytes_serialized"] > 0
    assert telemetry["timeout_leaked"] == 0


def test_run_positional_names_any_order(capsys):
    # Case-insensitive, order-free classification of workload/scheduler.
    assert main(["run", "grws", "mm-256", "--repetitions", "1"]) == 0
    out_a = capsys.readouterr().out
    assert main(["run", "MM-256", "GRWS", "--repetitions", "1"]) == 0
    out_b = capsys.readouterr().out
    assert "mm-256" in out_a and "E_tot" in out_a
    assert out_a == out_b


def test_run_positional_unknown_name_rejected(capsys):
    assert main(["run", "mm-256", "frobnicate"]) == 2
    assert "frobnicate" in capsys.readouterr().err


def test_run_events_and_metrics_out(capsys, tmp_path):
    events = tmp_path / "events.jsonl"
    prom = tmp_path / "metrics.prom"
    rc = main(
        ["run", "joss", "mm-256", "--repetitions", "1",
         "--events-out", str(events), "--metrics-out", str(prom)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert str(events) in out and str(prom) in out

    from repro.obs import read_events

    types = {ev.type for ev in read_events(events)}
    assert len(types) >= 6
    assert {"run_started", "run_finished", "dvfs_set",
            "config_selected"} <= types
    text = prom.read_text()
    assert "# TYPE" in text
    assert "joss_decisions_total" in text


def test_shared_platform_option(capsys):
    # --platform is part of the shared parent parser: accepted by run,
    # and an unregistered platform is rejected at parse time.
    assert main(["run", "grws", "mm-256", "--repetitions", "1",
                 "--platform", "odroid-xu4"]) == 0
    assert "platform=odroid-xu4" in capsys.readouterr().out
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "grws", "mm-256",
                                   "--platform", "pdp-11"])


def test_seed_defaults_do_not_leak_across_subcommands():
    p = build_parser()
    assert p.parse_args(["run", "grws", "mm-256"]).seed == 11
    assert p.parse_args(["profile"]).seed == 0
    assert p.parse_args(["validate"]).seed == 0
    # A later parse of `run` must still see 11 (argparse parents share
    # action objects; a set_defaults on one child used to leak).
    assert p.parse_args(["run", "grws", "mm-256"]).seed == 11


def test_sweep_no_cache_and_json_output(capsys, tmp_path):
    out_json = tmp_path / "out.json"
    rc = main(
        ["sweep", "-w", "fb", "-s", "GRWS", "--repetitions", "1",
         "--no-cache", "-o", str(out_json)]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "cache-hit" not in out
    import json

    payload = json.loads(out_json.read_text())
    assert payload["results"][0]["job"]["workload"] == "fb"
    assert payload["results"][0]["metrics"]["tasks_executed"] > 0
    assert payload["telemetry"]["total"] == 1
