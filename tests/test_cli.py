"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "slu" in out
    assert "JOSS" in out
    assert "fig8" in out


def test_version_exits():
    with pytest.raises(SystemExit) as e:
        main(["--version"])
    assert e.value.code == 0


def test_run_single(capsys):
    assert main(["run", "-w", "mm-256", "-s", "GRWS", "--repetitions", "1"]) == 0
    out = capsys.readouterr().out
    assert "mm-256" in out
    assert "E_tot" in out


def test_run_multiple_with_ratio(capsys):
    rc = main(
        ["run", "-w", "mm-256", "-s", "GRWS", "JOSS",
         "--repetitions", "1", "-v"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "vs first" in out
    assert "mm.256" in out  # verbose decision dump


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-w", "nope", "-s", "GRWS"])


def test_experiment_tab1(capsys, tmp_path):
    assert main(["experiment", "tab1", "-o", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert (tmp_path / "tab1.txt").exists()


def test_experiment_unknown(capsys):
    assert main(["experiment", "nope"]) == 2


def test_profile(capsys):
    assert main(["profile"]) == 0
    out = capsys.readouterr().out
    assert "jetson-tx2" in out
    assert "<denver, 2>" in out
