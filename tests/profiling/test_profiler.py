"""Tests for the platform profiler and the dataset container."""

from __future__ import annotations

import pytest

from repro.hw import jetson_tx2
from repro.profiling import PlatformProfiler, ProfilingDataset
from repro.profiling.dataset import IdleRecord, ProfileRecord


@pytest.fixture(scope="module")
def small_dataset():
    """A reduced profiling pass (fast) shared across this module."""
    prof = PlatformProfiler(
        jetson_tx2,
        seed=0,
        synthetic_count=9,
        cpu_train_freqs=[0.499, 1.110, 2.040],
        mem_train_freqs=[0.408, 1.062, 1.866],
    )
    return prof.run()


class TestProfiler:
    def test_record_count(self, small_dataset):
        # 9 kernels x 5 <T_C,N_C> configs x 3 f_C x 3 f_M
        assert len(small_dataset) == 9 * 5 * 9

    def test_idle_covers_full_grid(self, small_dataset):
        assert len(small_dataset.idle) == 12 * 7

    def test_configs_match_platform(self, small_dataset):
        assert set(small_dataset.configs()) == {
            ("denver", 1), ("denver", 2), ("a57", 1), ("a57", 2), ("a57", 4)
        }

    def test_times_positive_and_freq_sensitive(self, small_dataset):
        ds = small_dataset
        assert all(r.time > 0 for r in ds)
        k = ds.kernel_names()[4]
        slow = ds.lookup(k, "a57", 1, 0.499, 1.866)
        fast = ds.lookup(k, "a57", 1, 2.040, 1.866)
        assert slow.time > fast.time

    def test_powers_nonnegative(self, small_dataset):
        assert all(r.cpu_power >= 0 and r.mem_power >= 0 for r in small_dataset)

    def test_memory_heavy_kernel_draws_more_memory_power(self, small_dataset):
        ds = small_dataset
        names = ds.kernel_names()
        memk, cmpk = names[0], names[-1]  # ratio 0% and 100% compute
        pm = ds.lookup(memk, "a57", 1, 2.040, 1.866).mem_power
        pc = ds.lookup(cmpk, "a57", 1, 2.040, 1.866).mem_power
        assert pm > pc

    def test_compute_kernel_draws_more_cpu_power(self, small_dataset):
        ds = small_dataset
        names = ds.kernel_names()
        memk, cmpk = names[0], names[-1]
        assert (
            ds.lookup(cmpk, "denver", 1, 2.040, 1.866).cpu_power
            > ds.lookup(memk, "denver", 1, 2.040, 1.866).cpu_power
        )

    def test_invalid_training_freq_rejected(self):
        from repro.errors import ConfigurationError

        prof = PlatformProfiler(jetson_tx2, cpu_train_freqs=[1.0])
        with pytest.raises(ConfigurationError):
            prof.run()

    def test_moldable_config_faster(self, small_dataset):
        ds = small_dataset
        k = ds.kernel_names()[-1]  # compute-bound scales well
        t1 = ds.lookup(k, "a57", 1, 2.040, 1.866).time
        t4 = ds.lookup(k, "a57", 4, 2.040, 1.866).time
        assert t4 < t1 / 2


class TestDatasetRoundtrip:
    def test_json_roundtrip(self, small_dataset, tmp_path):
        p = tmp_path / "ds.json"
        small_dataset.save(p)
        loaded = ProfilingDataset.load(p)
        assert len(loaded) == len(small_dataset)
        assert loaded.records[0] == small_dataset.records[0]
        assert loaded.idle[0] == small_dataset.idle[0]
        assert loaded.platform_name == small_dataset.platform_name

    def test_filter(self):
        ds = ProfilingDataset(
            [
                ProfileRecord("k", "a57", 1, 1.0, 1.0, 0.5, 1.0, 0.2),
                ProfileRecord("k", "denver", 1, 1.0, 1.0, 0.2, 2.0, 0.2),
            ],
            [IdleRecord(1.0, 1.0, 0.5, 0.3)],
        )
        only = ds.filter(lambda r: r.cluster == "a57")
        assert len(only) == 1
        assert only.records[0].cluster == "a57"

    def test_lookup_missing_returns_none(self):
        ds = ProfilingDataset()
        assert ds.lookup("x", "a57", 1, 1.0, 1.0) is None
