"""Tests for synthetic benchmark generation (paper section 4.1)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exec_model import GroundTruthTiming
from repro.profiling import synthetic_kernels


def test_default_count_is_41(tx2):
    ks = synthetic_kernels(tx2)
    assert len(ks) == 41


def test_ratio_sweep_monotone(tx2):
    """Compute work rises and memory traffic falls along the sweep."""
    ks = synthetic_kernels(tx2)
    comps = [k.w_comp for k in ks]
    mems = [k.w_bytes for k in ks]
    assert comps == sorted(comps)
    assert mems == sorted(mems, reverse=True)
    assert mems[-1] == 0.0


def test_constant_reference_time(tx2):
    """All synthetics run for ~t_ref on the calibration config, the
    paper's 'total execution time constant' property."""
    t_ref = 0.01
    ks = synthetic_kernels(tx2, t_ref=t_ref)
    timing = GroundTruthTiming(tx2.memory)
    ct = tx2.clusters[1].core_type
    for k in ks:
        d = timing.duration(k, ct, 1, 2.04, 1.866)
        assert d == pytest.approx(t_ref, rel=0.02)


def test_mb_spans_zero_to_one(tx2):
    ks = synthetic_kernels(tx2)
    timing = GroundTruthTiming(tx2.memory)
    ct = tx2.clusters[1].core_type
    mbs = [timing.memory_boundness(k, ct, 1, 2.04, 1.866) for k in ks]
    assert mbs[0] > 0.95   # pure memory
    assert mbs[-1] < 0.05  # pure compute
    assert mbs == sorted(mbs, reverse=True)


def test_names_unique(tx2):
    ks = synthetic_kernels(tx2)
    assert len({k.name for k in ks}) == len(ks)


def test_invalid_params_rejected(tx2):
    with pytest.raises(ConfigurationError):
        synthetic_kernels(tx2, count=1)
    with pytest.raises(ConfigurationError):
        synthetic_kernels(tx2, t_ref=0.0)


def test_custom_count(tx2):
    assert len(synthetic_kernels(tx2, count=11)) == 11
