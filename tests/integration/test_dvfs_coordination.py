"""Integration tests for DVFS coordination behaviour during runs.

The paper's section 5.3: concurrent tasks with conflicting frequency
desires on a shared domain are balanced by arithmetic averaging, and
this measurably outperforms letting either side win outright when the
conflict is real.
"""

from __future__ import annotations

import pytest

from repro.core import JossScheduler
from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskGraph
from repro.sim.trace import Tracer

FAST_K = KernelSpec("fast.k", w_comp=0.3, w_bytes=0.001, type_affinity={"denver": 1.4})
SLOW_K = KernelSpec("slow.k", w_comp=0.02, w_bytes=0.02)


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def conflict_graph(waves=25):
    """Two kernels with different frequency sweet spots, always
    concurrent — a sustained coordination conflict."""
    g = TaskGraph("conflict")
    prev = None
    for _ in range(waves):
        layer = [
            g.add_task(FAST_K if j % 2 else SLOW_K, deps=[prev] if prev else None)
            for j in range(6)
        ]
        prev = g.add_task(FAST_K, deps=layer)
    return g


def run(coordination, seed=5):
    suite = profile_and_fit(jetson_tx2, seed=0)
    sched = JossScheduler(suite, coordination=coordination)
    ex = Executor(jetson_tx2(), sched, seed=seed)
    return ex.run(conflict_graph())


class TestCoordinationUnderConflict:
    def test_frequencies_actually_move_during_run(self, suite):
        tracer = Tracer(categories=["freq-change"])
        ex = Executor(jetson_tx2(), JossScheduler(suite), seed=5, tracer=tracer)
        ex.run(conflict_graph())
        assert len(tracer) > 2

    def test_mean_not_dominated_by_extremes(self):
        e_mean = run("mean").total_energy
        e_max = run("max").total_energy
        e_min = run("min").total_energy
        # The paper found the mean best overall; at minimum it must not
        # lose badly to either extreme under a genuine conflict.
        assert e_mean <= e_max * 1.05
        assert e_mean <= e_min * 1.10

    def test_requests_are_snapped_to_opps(self, suite):
        """Averaged requests land on real OPPs (the controller snaps)."""
        tracer = Tracer(categories=["freq-change"])
        ex = Executor(jetson_tx2(), JossScheduler(suite), seed=5, tracer=tracer)
        ex.run(conflict_graph())
        plat = jetson_tx2()
        for rec in tracer:
            domain = rec.payload["domain"]
            f = rec.payload["freq"]
            if domain == "emc":
                assert f in plat.memory.opps
            else:
                assert f in plat.clusters[0].opps


class TestDvfsLatencyEffects:
    def test_latency_free_dvfs_is_no_worse(self, suite):
        """Removing transition latency can only help (sanity on the
        latency model's sign)."""

        def run_with(latency):
            sched = JossScheduler(suite)
            ex = Executor(
                jetson_tx2(), sched, seed=5,
                cpu_dvfs_latency_s=latency, mem_dvfs_latency_s=latency,
            )
            return ex.run(conflict_graph())

        m_instant = run_with(0.0)
        m_slow = run_with(5e-3)  # pathologically slow transitions
        assert m_instant.makespan <= m_slow.makespan * 1.15
