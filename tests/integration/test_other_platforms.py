"""Integration invariants on the non-TX2 platforms.

The same liveness/safety/determinism guarantees must hold on the
per-core-DVFS TX2 variant and the ODROID-XU4 model, for every
scheduler that supports them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hw.platform import jetson_tx2_per_core, odroid_xu4
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskState
from repro.schedulers import make_scheduler
from tests.integration.test_invariants import KERNELS, random_dag

PLATFORMS = {
    "per-core": jetson_tx2_per_core,
    "xu4": odroid_xu4,
}

SCHEDULERS = ["GRWS", "Aequitas", "ERASE", "JOSS"]


@pytest.fixture(scope="module")
def suites():
    return {name: profile_and_fit(f, seed=0) for name, f in PLATFORMS.items()}


@pytest.mark.parametrize("platform_name", list(PLATFORMS))
@pytest.mark.parametrize("sched_name", SCHEDULERS)
def test_random_dags_complete(platform_name, sched_name, suites):
    factory = PLATFORMS[platform_name]
    suite = None if sched_name in ("GRWS", "Aequitas") else suites[platform_name]
    for seed in (3, 17):
        g = random_dag(np.random.default_rng(seed), 40)
        sched = make_scheduler(sched_name, suite)
        ex = Executor(factory(), sched, seed=seed)
        m = ex.run(g)
        assert m.tasks_executed == 40
        assert all(t.state is TaskState.DONE for t in g.tasks)
        for t in g.tasks:
            for d in t.dependents:
                assert d.start_time >= t.end_time - 1e-9


@pytest.mark.parametrize("platform_name", list(PLATFORMS))
def test_determinism(platform_name, suites):
    factory = PLATFORMS[platform_name]

    def once():
        g = random_dag(np.random.default_rng(5), 30)
        sched = make_scheduler("JOSS", suites[platform_name])
        return Executor(factory(), sched, seed=9).run(g)

    a, b = once(), once()
    assert a.total_energy == b.total_energy
    assert a.makespan == b.makespan


def test_xu4_memory_knob_never_moves(suites):
    g = random_dag(np.random.default_rng(2), 40)
    ex = Executor(odroid_xu4(), make_scheduler("JOSS", suites["xu4"]), seed=2)
    m = ex.run(g)
    assert m.memory_freq_transitions == 0
    assert ex.platform.memory.freq == 0.825
