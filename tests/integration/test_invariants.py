"""Cross-module integration and property tests.

System-level invariants that must hold for any workload under any
scheduler: liveness (all tasks complete), dependency safety, exact
accounting consistency, and determinism.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec_model import KernelSpec
from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor, TaskGraph, TaskState
from repro.schedulers import make_scheduler

KERNELS = [
    KernelSpec("i.cmp", w_comp=0.15, w_bytes=0.001, type_affinity={"denver": 1.4}),
    KernelSpec("i.mix", w_comp=0.03, w_bytes=0.008),
    KernelSpec("i.mem", w_comp=0.004, w_bytes=0.02),
]


@pytest.fixture(scope="module")
def suite():
    return profile_and_fit(jetson_tx2, seed=0)


def random_dag(rng: np.random.Generator, n_tasks: int) -> TaskGraph:
    """Random layered DAG with random kernels and fan-in."""
    g = TaskGraph("random")
    for i in range(n_tasks):
        kernel = KERNELS[int(rng.integers(len(KERNELS)))]
        deps = []
        if g.tasks:
            fan_in = int(rng.integers(0, min(3, len(g.tasks)) + 1))
            idx = rng.choice(len(g.tasks), size=fan_in, replace=False)
            deps = [g.tasks[int(j)] for j in idx]
        g.add_task(kernel, deps=deps)
    return g


SCHEDULER_NAMES = ["GRWS", "ERASE", "Aequitas", "STEER", "JOSS"]


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_tasks=st.integers(min_value=5, max_value=60),
    sched_idx=st.integers(min_value=0, max_value=len(SCHEDULER_NAMES) - 1),
)
def test_property_any_dag_any_scheduler_completes(suite, seed, n_tasks, sched_idx):
    """Liveness + safety: every random DAG finishes under every
    scheduler; dependencies are never violated; energy is positive and
    exactly accounted."""
    rng = np.random.default_rng(seed)
    g = random_dag(rng, n_tasks)
    name = SCHEDULER_NAMES[sched_idx]
    sched = make_scheduler(name, None if name in ("GRWS", "Aequitas") else suite)
    ex = Executor(jetson_tx2(), sched, seed=seed)
    m = ex.run(g)
    # Liveness.
    assert m.tasks_executed == n_tasks
    assert all(t.state is TaskState.DONE for t in g.tasks)
    # Dependency safety.
    for t in g.tasks:
        for d in t.dependents:
            assert d.start_time >= t.end_time - 1e-9
    # Exact energy accounting: rails integrate over exactly [0, makespan].
    assert m.cpu_energy_exact > 0 and m.mem_energy_exact > 0
    idle_floor = sum(
        ex.platform.power_model.cpu_idle_power(cl, cl.opps.min)
        for cl in ex.platform.clusters
    )
    assert m.cpu_energy_exact >= idle_floor * m.makespan * 0.5


class TestDeterminismAcrossSchedulers:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_bitwise_repeatable(self, suite, name):
        def once():
            g = random_dag(np.random.default_rng(42), 30)
            sched = make_scheduler(
                name, None if name in ("GRWS", "Aequitas") else suite
            )
            return Executor(jetson_tx2(), sched, seed=9).run(g)

        a, b = once(), once()
        assert a.makespan == b.makespan
        assert a.total_energy == b.total_energy
        assert a.steals == b.steals


class TestEnergyTimeConsistency:
    def test_sensor_tracks_exact_for_every_scheduler(self, suite):
        g_seed = 7
        for name in SCHEDULER_NAMES:
            g = random_dag(np.random.default_rng(g_seed), 40)
            sched = make_scheduler(
                name, None if name in ("GRWS", "Aequitas") else suite
            )
            m = Executor(jetson_tx2(), sched, seed=3).run(g)
            if m.makespan > 0.05:  # enough sensor samples
                assert m.total_energy == pytest.approx(
                    m.total_energy_exact, rel=0.10
                )

    def test_makespan_at_least_critical_path(self, suite):
        """The makespan can never beat the critical path at maximum
        speed on the fastest core."""
        from repro.exec_model import GroundTruthTiming

        g = TaskGraph("chain")
        prev = None
        for _ in range(10):
            prev = g.add_task(KERNELS[0], deps=[prev] if prev else None)
        tx2 = jetson_tx2()
        timing = GroundTruthTiming(tx2.memory)
        fastest = min(
            timing.duration(KERNELS[0], cl.core_type, cl.n_cores, 2.04, 1.866)
            for cl in tx2.clusters
        )
        m = Executor(jetson_tx2(), make_scheduler("JOSS", suite), seed=1).run(g)
        assert m.makespan >= 10 * fastest * 0.9


class TestMoldableInvariants:
    @settings(max_examples=10, deadline=None)
    @given(nc=st.sampled_from([1, 2, 4]), seed=st.integers(0, 100))
    def test_property_partition_join_counts(self, nc, seed):
        """A moldable task completes exactly once, with partitions_total
        equal to the requested width (capped by the cluster)."""
        from repro.runtime import Placement, Scheduler

        class Pin(Scheduler):
            name = "pin"

            def place(self, task):
                return Placement(
                    cluster=self.ctx.platform.clusters[1], n_cores=nc
                )

        g = TaskGraph("m")
        for _ in range(6):
            g.add_task(KERNELS[0])
        ex = Executor(jetson_tx2(), Pin(), seed=seed)
        m = ex.run(g)
        assert m.tasks_executed == 6
        for t in g.tasks:
            assert t.partitions_total == nc
            assert t.partitions_remaining == 0
