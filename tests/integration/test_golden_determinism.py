"""Golden-run determinism: the hot-path caches must not move a single
bit of observable output.

Two full runs with identical seeds — one with every engine-layer cache
enabled (the default), one with ``engine_cache_size=0`` (the seed
commit's code path, re-timing and re-evaluating power from scratch at
every state change) — must serialise to byte-identical RunMetrics JSON
and byte-identical Chrome traces.  This is the contract that lets the
perf work ride on caches at all.
"""

from __future__ import annotations

import json

import pytest

from repro.hw import jetson_tx2
from repro.models import profile_and_fit
from repro.runtime import Executor
from repro.schedulers import make_scheduler
from repro.schedulers.registry import needs_suite
from repro.sim.trace import Tracer
from repro.workloads import build_workload

COMBOS = [("hd-small", "GRWS", 11), ("fb", "JOSS", 7)]


def _run(workload: str, sched_name: str, seed: int, cache_size: int):
    suite = (
        profile_and_fit(jetson_tx2, seed=0) if needs_suite(sched_name) else None
    )
    sched = make_scheduler(sched_name, suite)
    tracer = Tracer()
    ex = Executor(
        jetson_tx2(), sched, seed=seed, tracer=tracer,
        engine_cache_size=cache_size,
    )
    metrics = ex.run(build_workload(workload, scale=1.0, seed=3))
    return (
        json.dumps(metrics.to_dict(), indent=1, sort_keys=True),
        json.dumps(tracer.to_chrome_trace(), indent=1, sort_keys=True),
    )


@pytest.mark.parametrize("workload,sched_name,seed", COMBOS)
def test_cached_run_is_byte_identical_to_uncached(workload, sched_name, seed):
    cached = _run(workload, sched_name, seed, cache_size=8192)
    uncached = _run(workload, sched_name, seed, cache_size=0)
    assert cached[0] == uncached[0]  # serialized RunMetrics
    assert cached[1] == uncached[1]  # Chrome trace


def test_same_seed_same_bytes_across_repeats():
    """Determinism within one configuration: repeat runs are exact."""
    a = _run("hd-small", "JOSS", 5, cache_size=8192)
    b = _run("hd-small", "JOSS", 5, cache_size=8192)
    assert a == b
