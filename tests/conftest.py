"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw import jetson_tx2
from repro.hw.platform import Platform
from repro.sim import Simulator
from repro.sim.rng import RngStreams


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def tx2() -> Platform:
    """Fresh Jetson TX2 platform model (frequencies at max)."""
    return jetson_tx2()


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(seed=1234)
