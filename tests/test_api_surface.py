"""The documented facade (docs/api.md) and the real one must agree.

Thin wrapper over ``tools/check_api_surface.py`` so the contract is
enforced by the tier-1 suite as well as the dedicated CI step.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture()
def checker():
    sys.path.insert(0, str(TOOLS))
    try:
        yield importlib.import_module("check_api_surface")
    finally:
        sys.path.remove(str(TOOLS))


def test_facade_surface_consistent(checker, capsys):
    assert checker.main() == 0
    assert "OK" in capsys.readouterr().out


def test_documented_names_match_package_all(checker):
    import repro

    documented = checker.documented_names(
        checker.API_MD.read_text(encoding="utf-8")
    )
    assert set(documented) == set(repro._FACADE)
    assert set(repro.__all__) == {"__version__", *documented}


def test_facade_attributes_resolve_and_cache():
    import repro

    for name in repro._FACADE:
        obj = getattr(repro, name)
        assert callable(obj), name
        # PEP 562 caching: second access hits module globals directly.
        assert repro.__dict__[name] is obj


def test_unknown_facade_attribute_raises():
    import repro

    with pytest.raises(AttributeError):
        repro.no_such_name


def test_row_parser_ignores_non_facade_tables(checker):
    text = (
        "| `repro.run` | x | y |\n"
        "| `repro.obs.EventBus` | not a facade row |\n"
        "| event | emitted by |\n"
    )
    assert checker.documented_names(text) == ["run"]
